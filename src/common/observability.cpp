#include "common/observability.hpp"

#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/error.hpp"

namespace cq::common::obs {

std::uint64_t now_ns() noexcept {
  using clock = std::chrono::steady_clock;
  static const clock::time_point origin = clock::now();
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() - origin)
          .count());
}

// ------------------------------------------------------------- Histogram --

void Histogram::record(std::uint64_t value) noexcept {
  buckets_[static_cast<std::size_t>(std::bit_width(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void Histogram::copy_from(const Histogram& other) noexcept {
  for (std::size_t b = 0; b < kBuckets; ++b) {
    buckets_[b].store(load(other.buckets_[b]), std::memory_order_relaxed);
  }
  count_.store(load(other.count_), std::memory_order_relaxed);
  sum_.store(load(other.sum_), std::memory_order_relaxed);
  min_.store(load(other.min_), std::memory_order_relaxed);
  max_.store(load(other.max_), std::memory_order_relaxed);
}

double Histogram::percentile(double p) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (p <= 0) return static_cast<double>(min());
  if (p >= 100) return static_cast<double>(max());
  // 1-based rank of the sample at percentile p (nearest-rank).
  const auto rank =
      static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t in_bucket = bucket(b);
    if (in_bucket == 0) continue;
    if (cum + in_bucket < rank) {
      cum += in_bucket;
      continue;
    }
    // Bucket b holds values with bit_width == b: [2^(b-1), 2^b - 1] (b>=1),
    // or exactly 0 (b==0). Interpolate by rank position within the bucket.
    const double lo = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
    const double hi = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b)) - 1.0;
    const double frac = in_bucket <= 1 ? 0.0
                                       : static_cast<double>(rank - cum - 1) /
                                             static_cast<double>(in_bucket - 1);
    double v = lo + frac * (hi - lo);
    // Clamp to observed range: makes single-sample and tail estimates exact.
    v = std::max(v, static_cast<double>(min()));
    v = std::min(v, static_cast<double>(max()));
    return v;
  }
  return static_cast<double>(max());
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  os << "count=" << count() << " mean=" << mean() << " p50=" << p50()
     << " p95=" << p95() << " p99=" << p99() << " max=" << max();
  return os.str();
}

// --------------------------------------------------------- TraceCollector --

TraceCollector::TraceCollector(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(std::min<std::size_t>(capacity_, 1024));
}

void TraceCollector::record(std::string name, std::uint64_t start_ns,
                            std::uint64_t dur_ns, std::uint32_t depth) {
  LockGuard lock(mu_);
  TraceEvent event{std::move(name), start_ns, dur_ns, depth};
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(event));
  } else {
    ring_[next_ % capacity_] = std::move(event);
  }
  next_ = (next_ + 1) % capacity_;
  ++total_;
}

std::vector<TraceEvent> TraceCollector::snapshot() const {
  LockGuard lock(mu_);
  std::vector<TraceEvent> out;
  out.reserve(ring_.size());
  if (ring_.size() < capacity_) {
    out = ring_;
  } else {
    // Oldest event sits at next_ once the ring has wrapped.
    for (std::size_t i = 0; i < ring_.size(); ++i) {
      out.push_back(ring_[(next_ + i) % capacity_]);
    }
  }
  return out;
}

std::size_t TraceCollector::size() const {
  LockGuard lock(mu_);
  return ring_.size();
}

std::size_t TraceCollector::capacity() const {
  LockGuard lock(mu_);
  return capacity_;
}

std::uint64_t TraceCollector::dropped() const {
  LockGuard lock(mu_);
  return total_ - ring_.size();
}

void TraceCollector::clear() {
  LockGuard lock(mu_);
  ring_.clear();
  next_ = 0;
  total_ = 0;
}

void TraceCollector::set_capacity(std::size_t capacity) {
  LockGuard lock(mu_);
  capacity_ = capacity == 0 ? 1 : capacity;
  ring_.clear();
  ring_.shrink_to_fit();
  next_ = 0;
  total_ = 0;
}

std::string TraceCollector::to_chrome_json() const {
  const std::vector<TraceEvent> events = snapshot();
  JsonWriter w;
  w.begin_array();
  for (const auto& e : events) {
    w.begin_object();
    w.kv("name", e.name);
    w.kv("ph", "X");
    w.kv("pid", std::int64_t{1});
    // chrome://tracing stacks same-tid "X" events by time containment;
    // depth is informative only.
    w.kv("tid", std::int64_t{1});
    w.kv("ts", static_cast<double>(e.start_ns) / 1000.0);
    w.kv("dur", static_cast<double>(e.dur_ns) / 1000.0);
    w.key("args").begin_object().kv("depth", std::uint64_t{e.depth}).end_object();
    w.end_object();
  }
  w.end_array();
  return w.str();
}

void TraceCollector::write_chrome_trace(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw IoError("trace dump: cannot open '" + path + "' for writing");
  out << to_chrome_json() << "\n";
  if (!out) throw IoError("trace dump: write to '" + path + "' failed");
}

// ------------------------------------------------------------------ Span --

namespace {
thread_local std::uint32_t t_span_depth = 0;
}  // namespace

Span::Span(const char* name, Histogram* latency_us) noexcept
    : name_(name), latency_us_(latency_us), active_(enabled()) {
  if (active_) {
    start_ns_ = now_ns();
    depth_ = t_span_depth++;
  }
}

void Span::close() noexcept {
  if (!active_) return;
  active_ = false;
  --t_span_depth;
  const std::uint64_t dur = now_ns() - start_ns_;
  try {
    global().traces().record(name_, start_ns_, dur, depth_);
    if (latency_us_ != nullptr) latency_us_->record(dur / 1000);
  } catch (...) {
    // Tracing must never take the process down (allocation failure, ...).
  }
}

// -------------------------------------------------------------- Registry --

Histogram& Registry::histogram(const std::string& name) {
  LockGuard lock(mu_);
  return histograms_[name];
}

std::map<std::string, Histogram> Registry::histogram_snapshot() const {
  LockGuard lock(mu_);
  return histograms_;
}

Gauge& Registry::gauge(const std::string& name, Labels labels) {
  LockGuard lock(mu_);
  return gauges_[{name, std::move(labels)}];
}

std::vector<GaugeSample> Registry::gauge_snapshot() const {
  LockGuard lock(mu_);
  std::vector<GaugeSample> out;
  out.reserve(gauges_.size());
  for (const auto& [key, g] : gauges_) {
    out.push_back({key.first, key.second, g.get()});
  }
  return out;
}

void Registry::reset() {
  metrics_.reset();
  traces_.clear();
  events_.clear();
  LockGuard lock(mu_);
  for (auto& [name, h] : histograms_) h.reset();
  for (auto& [key, g] : gauges_) g.set(0);
}

void refresh_registry_gauges() {
  Registry& r = global();
  r.gauge(gauge::kTraceRingEvents).set(static_cast<std::int64_t>(r.traces().size()));
  r.gauge(gauge::kTraceRingDropped).set(static_cast<std::int64_t>(r.traces().dropped()));
  r.gauge(gauge::kEventLogEvents).set(static_cast<std::int64_t>(r.events().size()));
  r.gauge(gauge::kEventLogDropped).set(static_cast<std::int64_t>(r.events().dropped()));
}

Registry& global() noexcept {
  static Registry registry;
  return registry;
}

// ------------------------------------------------------------ JsonWriter --

std::string JsonWriter::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::comma() {
  if (pending_key_) {
    pending_key_ = false;
    return;  // value completes a "key": pair; no comma
  }
  if (!first_.empty()) {
    if (first_.back()) {
      first_.back() = false;
    } else {
      out_ += ',';
    }
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma();
  out_ += '{';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma();
  out_ += '[';
  first_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  first_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(const std::string& k) {
  comma();
  out_ += '"';
  out_ += escape(k);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(const std::string& v) {
  comma();
  out_ += '"';
  out_ += escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string(v)); }

JsonWriter& JsonWriter::value(std::int64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  comma();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  comma();
  if (!std::isfinite(v)) {
    out_ += "null";
    return *this;
  }
  std::ostringstream os;
  os << v;
  out_ += os.str();
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma();
  out_ += v ? "true" : "false";
  return *this;
}

// ---------------------------------------------------------------- export --

void write_histogram_json(JsonWriter& w, const Histogram& h) {
  w.begin_object();
  w.kv("count", h.count());
  w.kv("sum", h.sum());
  w.kv("min", h.min());
  w.kv("max", h.max());
  w.kv("mean", h.mean());
  w.kv("p50", h.p50());
  w.kv("p95", h.p95());
  w.kv("p99", h.p99());
  w.end_object();
}

std::string export_json(const Metrics& counters,
                        const std::map<std::string, Histogram>& histograms,
                        const std::vector<Section>& sections) {
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, value] : counters.all()) w.kv(name, value);
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : histograms) {
    w.key(name);
    write_histogram_json(w, h);
  }
  w.end_object();
  for (const auto& section : sections) {
    w.key(section.key);
    section.write(w);
  }
  w.end_object();
  return w.str();
}

std::string export_json(const Registry& registry, const std::vector<Section>& sections) {
  return export_json(registry.metrics(), registry.histogram_snapshot(), sections);
}

}  // namespace cq::common::obs
