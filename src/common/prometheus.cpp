#include "common/prometheus.hpp"

#include <bit>
#include <cctype>

namespace cq::common::obs {

namespace {

constexpr const char* kPrefix = "cq_";

bool name_char(char c) noexcept {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == ':';
}

}  // namespace

std::string PromWriter::sanitize_name(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 1);
  if (!raw.empty() && std::isdigit(static_cast<unsigned char>(raw.front())) != 0) {
    out += '_';
  }
  for (const char c : raw) out += name_char(c) ? c : '_';
  return out;
}

std::string PromWriter::escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

PromWriter::Family& PromWriter::family(const std::string& name, const char* type) {
  Family& fam = families_[name];
  if (fam.type.empty()) fam.type = type;
  return fam;
}

void PromWriter::append_sample(Family& fam, const std::string& name,
                               const Labels& labels, const std::string& value) {
  std::string line = name;
  if (!labels.empty()) {
    line += '{';
    bool first = true;
    for (const auto& [k, v] : labels) {
      if (!first) line += ',';
      first = false;
      line += sanitize_name(k);
      line += "=\"";
      line += escape_label_value(v);
      line += '"';
    }
    line += '}';
  }
  line += ' ';
  line += value;
  fam.lines.push_back(std::move(line));
}

void PromWriter::counter(const std::string& name, std::int64_t value,
                         const Labels& labels) {
  const std::string fam_name = kPrefix + sanitize_name(name) + "_total";
  append_sample(family(fam_name, "counter"), fam_name, labels, std::to_string(value));
}

void PromWriter::gauge(const std::string& name, std::int64_t value,
                       const Labels& labels) {
  const std::string fam_name = kPrefix + sanitize_name(name);
  append_sample(family(fam_name, "gauge"), fam_name, labels, std::to_string(value));
}

void PromWriter::histogram(const std::string& name, const Histogram& h,
                           const Labels& labels) {
  const std::string fam_name = kPrefix + sanitize_name(name);
  Family& fam = family(fam_name, "histogram");

  // Cumulative buckets at the log2 upper bounds. Bucket b of the source
  // histogram holds values with bit_width == b, i.e. [2^(b-1), 2^b - 1],
  // so the cumulative count at le = 2^b - 1 is the sum of buckets 0..b.
  std::uint64_t cumulative = 0;
  const std::size_t top =
      h.count() == 0 ? 0 : static_cast<std::size_t>(std::bit_width(h.max()));
  for (std::size_t b = 0; b <= top && b < Histogram::kBuckets; ++b) {
    cumulative += h.bucket(b);
    const std::uint64_t le = b == 0 ? 0 : (std::uint64_t{1} << b) - 1;
    Labels with_le = labels;
    with_le.emplace_back("le", std::to_string(le));
    append_sample(fam, fam_name + "_bucket", with_le, std::to_string(cumulative));
  }
  Labels inf = labels;
  inf.emplace_back("le", "+Inf");
  append_sample(fam, fam_name + "_bucket", inf, std::to_string(h.count()));
  append_sample(fam, fam_name + "_sum", labels, std::to_string(h.sum()));
  append_sample(fam, fam_name + "_count", labels, std::to_string(h.count()));
}

std::string PromWriter::str() const {
  std::string out;
  for (const auto& [name, fam] : families_) {
    out += "# TYPE ";
    out += name;
    out += ' ';
    out += fam.type;
    out += '\n';
    for (const std::string& line : fam.lines) {
      out += line;
      out += '\n';
    }
  }
  return out;
}

std::string render_prometheus(
    const Metrics& counters, const std::vector<GaugeSample>& gauges,
    const std::map<std::string, Histogram>& histograms,
    const std::vector<std::function<void(PromWriter&)>>& sections) {
  PromWriter w;
  for (const auto& [name, value] : counters.all()) w.counter(name, value);
  for (const GaugeSample& g : gauges) {
    // Monotonic families kept in the gauge map (dropped totals, lane busy
    // time) render as counters so rate() works on them.
    if (gauge_is_counter(g.name)) {
      w.counter(g.name, g.value, g.labels);
    } else {
      w.gauge(g.name, g.value, g.labels);
    }
  }
  for (const auto& [name, h] : histograms) w.histogram(name, h);
  for (const auto& section : sections) section(w);
  return w.str();
}

namespace {

/// The lock-contention profiler's cq_lock_* families, one row per named
/// site: acquisition/contention counters plus wait- and hold-time
/// histograms.
void write_lockprof(PromWriter& w) {
  const std::size_t sites = lockprof::site_count();
  for (std::size_t i = 0; i < sites; ++i) {
    const lockprof::SiteStats& s = lockprof::site(i);
    const char* name = s.name.load(std::memory_order_acquire);
    if (name == nullptr) continue;
    const Labels labels{{"site", name}};
    w.counter("lock_acquisitions",
              static_cast<std::int64_t>(s.acquisitions.load(std::memory_order_relaxed)),
              labels);
    w.counter("lock_contended",
              static_cast<std::int64_t>(s.contended.load(std::memory_order_relaxed)),
              labels);
    w.histogram("lock_wait_us", s.wait_us, labels);
    w.histogram("lock_hold_us", s.hold_us, labels);
  }
}

}  // namespace

std::string render_prometheus(
    const Metrics& counters, Registry& registry,
    const std::vector<std::function<void(PromWriter&)>>& sections) {
  refresh_registry_gauges();
  std::vector<std::function<void(PromWriter&)>> all = sections;
  all.emplace_back([](PromWriter& w) { write_lockprof(w); });
  return render_prometheus(counters, registry.gauge_snapshot(),
                           registry.histogram_snapshot(), all);
}

}  // namespace cq::common::obs
