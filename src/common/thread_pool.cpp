#include "common/thread_pool.hpp"

#include <string>
#include <utility>

namespace cq::common {

namespace {

obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::global().gauge(obs::gauge::kPoolQueueDepth);
  return g;
}

obs::Histogram& task_wait_histogram() {
  static obs::Histogram& h = obs::global().histogram(obs::hist::kPoolTaskWaitUs);
  return h;
}

std::string lane_label(std::size_t lane, std::size_t workers) {
  return lane < workers ? "pool-" + std::to_string(lane + 1) : "dispatch";
}

}  // namespace

ThreadPool::ThreadPool(std::size_t workers)
    : busy_ns_(workers + 1), created_ns_(obs::now_ns()) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this, i] { worker_loop(i); });
  }
  hook_id_ = obs::register_refresh_hook([this] { publish_lane_gauges(); });
}

ThreadPool::~ThreadPool() {
  // Unregister first: it blocks until no scrape is mid-hook, so the hook
  // can never observe a dying pool.
  obs::unregister_refresh_hook(hook_id_);
  {
    LockGuard lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::run_task(Task task, std::size_t lane) {
  // Schedule-perturbation point: shake which lane wins the next task and
  // how long it sits on it (no-op unless a fuzz_schedule/seeded run armed
  // the perturber; compiled out entirely with the lock-order checker).
  CQ_SCHED_POINT("pool.task");
  if (task.enqueue_ns == 0) {  // tracing was off at enqueue: zero overhead
    task.fn();
    return;
  }
  const std::uint64_t start = obs::now_ns();
  task_wait_histogram().record((start - task.enqueue_ns) / 1000);
  {
    // Adopt the dispatcher's context: spans the task opens land on this
    // lane's track but keep the commit's trace id and nesting depth.
    obs::ContextScope ctx(task.ctx);
    task.fn();
  }
  busy_ns_[lane].fetch_add(obs::now_ns() - start, std::memory_order_relaxed);
}

void ThreadPool::drain(std::size_t lane) {
  while (!queue_.empty()) {
    Task task = std::move(queue_.back());
    queue_.pop_back();
    queue_depth_gauge().set(static_cast<std::int64_t>(queue_.size()));
    mu_.unlock();
    run_task(std::move(task), lane);
    mu_.lock();
    if (--pending_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::worker_loop(std::size_t lane) {
  obs::set_lane_name("pool-" + std::to_string(lane + 1));
  LockGuard lock(mu_);
  for (;;) {
    work_cv_.wait(mu_, [this]() CQ_REQUIRES(mu_) { return stop_ || !queue_.empty(); });
    if (stop_ && queue_.empty()) return;
    drain(lane);
  }
}

void ThreadPool::run_all(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  CQ_SCHED_POINT("pool.dispatch");
  std::uint64_t enqueue_ns = 0;
  obs::SpanContext ctx{};
  if (obs::enabled()) {
    obs::name_lane_if_unset("dispatch");
    enqueue_ns = obs::now_ns();
    ctx = obs::current_context();
  }
  {
    LockGuard lock(mu_);
    pending_ += tasks.size();
    // The queue drains LIFO; feed it reversed so workers pick tasks up in
    // submission order (helps batch-latency attribution, nothing else —
    // completion order is irrelevant to the merge phase).
    queue_.reserve(queue_.size() + tasks.size());
    for (auto it = tasks.rbegin(); it != tasks.rend(); ++it) {
      queue_.push_back(Task{std::move(*it), enqueue_ns, ctx});
    }
    queue_depth_gauge().set(static_cast<std::int64_t>(queue_.size()));
  }
  work_cv_.notify_all();
  LockGuard lock(mu_);
  drain(threads_.size());  // the caller is a lane too (the last busy slot)
  done_cv_.wait(mu_, [this]() CQ_REQUIRES(mu_) { return pending_ == 0; });
}

void ThreadPool::publish_lane_gauges() {
  const std::uint64_t alive_ns = obs::now_ns() - created_ns_;
  for (std::size_t lane = 0; lane < busy_ns_.size(); ++lane) {
    const obs::Labels labels{{"lane", lane_label(lane, threads_.size())}};
    const std::uint64_t busy = busy_ns_[lane].load(std::memory_order_relaxed);
    obs::global()
        .gauge(obs::gauge::kPoolLaneBusyUs, labels)
        .set(static_cast<std::int64_t>(busy / 1000));
    obs::global()
        .gauge(obs::gauge::kPoolLaneUtilization, labels)
        .set(alive_ns == 0 ? 0 : static_cast<std::int64_t>(busy * 100 / alive_ns));
  }
}

}  // namespace cq::common
