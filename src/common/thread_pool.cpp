#include "common/thread_pool.hpp"

#include <utility>

#include "common/observability.hpp"

namespace cq::common {

namespace {

obs::Gauge& queue_depth_gauge() {
  static obs::Gauge& g = obs::global().gauge(obs::gauge::kPoolQueueDepth);
  return g;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  threads_.reserve(workers);
  for (std::size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    LockGuard lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::drain() {
  while (!queue_.empty()) {
    std::function<void()> task = std::move(queue_.back());
    queue_.pop_back();
    queue_depth_gauge().set(static_cast<std::int64_t>(queue_.size()));
    mu_.unlock();
    task();
    mu_.lock();
    if (--pending_ == 0) done_cv_.notify_all();
  }
}

void ThreadPool::worker_loop() {
  LockGuard lock(mu_);
  for (;;) {
    work_cv_.wait(mu_, [this]() CQ_REQUIRES(mu_) { return stop_ || !queue_.empty(); });
    if (stop_ && queue_.empty()) return;
    drain();
  }
}

void ThreadPool::run_all(std::vector<std::function<void()>> tasks) {
  if (tasks.empty()) return;
  {
    LockGuard lock(mu_);
    pending_ += tasks.size();
    // The queue drains LIFO; feed it reversed so workers pick tasks up in
    // submission order (helps batch-latency attribution, nothing else —
    // completion order is irrelevant to the merge phase).
    queue_.reserve(queue_.size() + tasks.size());
    for (auto it = tasks.rbegin(); it != tasks.rend(); ++it) {
      queue_.push_back(std::move(*it));
    }
    queue_depth_gauge().set(static_cast<std::int64_t>(queue_.size()));
  }
  work_cv_.notify_all();
  LockGuard lock(mu_);
  drain();  // the caller is a lane too
  done_cv_.wait(mu_, [this]() CQ_REQUIRES(mu_) { return pending_ == 0; });
}

}  // namespace cq::common
