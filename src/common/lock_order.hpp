// Runtime lock-order verification for the annotated mutexes in
// common/sync.hpp — layer 1 of the three-layer lock-discipline subsystem
// (see docs/static-analysis.md and the checked-in hierarchy manifest
// docs/lock-hierarchy.md).
//
// Every *named* cq::common::Mutex carries a LockRank. In a build with
// CQ_LOCK_ORDER_CHECKS defined (default for Debug / RelWithDebInfo / the
// tsan preset; compiled out for Release) Mutex::lock():
//
//   1. pushes the acquisition onto a thread-local held-lock stack,
//   2. enforces monotone rank acquisition — blocking on a mutex whose
//      rank is <= any ranked mutex already held aborts the process,
//      naming both sites, both ranks, the full held chain and both
//      acquisition backtraces,
//   3. records the observed (held-site -> acquired-site) edge into a
//      process-global lock-order graph with incremental cycle detection,
//      so an ordering cycle between *unranked* sites (which the rank
//      check cannot see) also aborts at the moment it first closes.
//
// The graph is exported through the /lockgraph introspection endpoint
// (JSON + DOT) and each first-observed edge is journaled as a
// `lock_order_edge` event via the installable edge hook.
//
// Like lock_profile.hpp, this header sits *below* sync.hpp (sync.hpp
// includes it) and therefore never takes a lock of its own: the graph is
// a fixed matrix of relaxed atomics and the held stack is thread-local.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>

namespace cq::common::lockorder {

/// Acquisition ranks for the engine's long-lived mutex sites. Locks must
/// be acquired in strictly increasing rank order: outermost (held the
/// longest, taken first) ranks lowest. The numeric gaps are deliberate —
/// new sites slot between existing layers without renumbering. Every
/// ranked site must appear in docs/lock-hierarchy.md with its rationale;
/// scripts/check_lock_order.py cross-checks code against that manifest.
enum class LockRank : std::uint16_t {
  /// No rank declared. Unranked named mutexes (test scaffolding) are
  /// exempt from the monotonicity check but still feed the edge graph
  /// and its cycle detection.
  kUnranked = 0,
  /// The engine "big lock": serializes the command/commit loop with the
  /// introspection server's handlers. Outermost by construction.
  kEngine = 10,
  /// diom::Mediator internal state (sources, cursors, sync stats).
  kMediator = 20,
  /// Per-shard catalog commit locks (catalog::Database). A *cohort*: the
  /// shards share this rank and one site literal, and are acquired in
  /// ascending shard order — each shard mutex carries its shard index as
  /// an order key, and same-rank acquisition is legal only with strictly
  /// ascending nonzero keys.
  kCommitShard = 22,
  /// Commit timestamp/sequence allocator (catalog::Database) — the short
  /// critical section that totally orders commits.
  kCommitTs = 24,
  /// CqManager registered-CQ map structure (install/finish vs. dispatch).
  kCqEntries = 26,
  /// DeltaZoneRegistry per-relation zone clocks.
  kDeltaZones = 28,
  /// CqManager per-CQ stats registry.
  kCqStats = 30,
  /// core::LineageStore retention rings (delivery-time recording).
  kLineageStore = 35,
  /// ThreadPool queue mutex — acquired by the dispatcher while the
  /// engine-side locks above are (possibly) held; never held across task
  /// execution (drain releases it around run_task).
  kPool = 40,
  /// DeltaSnapshot memoization — taken by pool workers during parallel
  /// evaluation.
  kDeltaSnapshot = 50,
  /// DeltaRelation GC pin counts (pin_reads / truncate_before).
  kDeltaPins = 55,
  /// rel::prov relation-name interner.
  kProvInterner = 60,
  /// Observability refresh-hook table: held *while hooks run*, and hooks
  /// publish gauges, so this must rank before the registry.
  kRefreshHooks = 65,
  /// Structured journal ring (EventLog).
  kEventLog = 70,
  /// Span/trace ring (TraceCollector).
  kTraceRing = 72,
  /// obs::Registry histogram/gauge maps.
  kObsRegistry = 74,
  /// Trace lane-name table.
  kLaneNames = 76,
  /// Strictly-innermost leaf locks (test scaffolding that wants rank
  /// checking without claiming a real layer).
  kLeaf = 90,
};

[[nodiscard]] constexpr std::uint16_t rank_value(LockRank r) noexcept {
  return static_cast<std::uint16_t>(r);
}

/// Is the checker compiled into this build?
[[nodiscard]] constexpr bool compiled_in() noexcept {
#if defined(CQ_LOCK_ORDER_CHECKS)
  return true;
#else
  return false;
#endif
}

/// Capacity of the site table (mirrors lockprof::kMaxSites: sites are
/// per-role compile-time literals, not per-instance).
inline constexpr std::size_t kMaxSites = 64;

/// Sentinel: "no graph slot" — table full, or not yet registered.
inline constexpr std::uint32_t kNoSite = ~static_cast<std::uint32_t>(0);

/// Find-or-create the graph slot for `name` (pointer-keyed, then string
/// compare, so instances sharing a site literal aggregate into one node —
/// lockdep-style lock classes). Returns kNoSite when the table is full;
/// the mutex then still rank-checks but stays out of the graph. A site
/// re-registered with a *different* nonzero rank keeps its first rank
/// (scripts/check_lock_order.py rejects such drift at lint time).
[[nodiscard]] std::uint32_t register_site(const char* name,
                                          std::uint16_t rank) noexcept;

/// Mutex::lock/try_lock instrumentation: rank-check `addr` against this
/// thread's held stack (only when `blocking`), record held->acquired
/// edges, then push. Aborts on a rank inversion, a self-deadlock (same
/// mutex already held by this thread), or a freshly closed graph cycle.
///
/// `order_key` refines the rank rule for *cohorts* — arrays of mutexes
/// sharing one rank (the commit shards): blocking on a mutex whose rank
/// *equals* a held rank is legal iff both carry nonzero order keys and
/// the new key is strictly greater than every held same-rank key.
/// Key 0 means "no cohort": equal-rank blocking stays a violation.
void on_lock(const void* addr, const char* name, std::uint16_t rank,
             std::uint32_t order_key, std::uint32_t site,
             bool blocking) noexcept;

/// Mutex::unlock instrumentation: remove `addr` from the held stack
/// (wherever it sits — release order need not mirror acquisition).
void on_unlock(const void* addr) noexcept;

/// Depth of the calling thread's held-lock stack (tests: balance).
[[nodiscard]] std::size_t held_depth() noexcept;

// ------------------------------------------------------- graph inspection --

struct SiteInfo {
  const char* name = nullptr;
  std::uint16_t rank = 0;
};

[[nodiscard]] std::size_t site_count() noexcept;
[[nodiscard]] SiteInfo site(std::size_t i) noexcept;

/// Times the edge from->to was observed (0 = never).
[[nodiscard]] std::uint64_t edge_count(std::uint32_t from,
                                       std::uint32_t to) noexcept;

/// Violations that were *reported* rather than aborted on (see
/// set_abort_on_violation — tests flip it to assert on the count).
[[nodiscard]] std::uint64_t violations() noexcept;

/// The observed lock-order graph as JSON:
///   {"enabled":true,"sites":[{"id":0,"name":"engine","rank":10},...],
///    "edges":[{"from":"engine","to":"mediator","count":12},...]}
/// With the checker compiled out this still links and reports
/// {"enabled":false,...} with empty arrays.
[[nodiscard]] std::string to_json();

/// Same graph as GraphViz DOT (one node per site, labelled with its
/// rank; one edge per observed ordered pair, labelled with its count).
[[nodiscard]] std::string to_dot();

/// Drop every recorded edge (site registrations and ranks survive).
/// Test scaffolding — the graph is normally append-only for the process
/// lifetime.
void reset_graph() noexcept;

// ----------------------------------------------------------------- hooks --

/// First-observation edge callback, installed by the observability layer
/// to journal `lock_order_edge` events. Called at most once per ordered
/// site pair, outside the checker's own bookkeeping (re-entrant lock
/// acquisitions made by the hook are ignored). Plain function pointer:
/// this layer sits below <functional> users.
struct EdgeEvent {
  const char* held = nullptr;
  const char* acquired = nullptr;
  std::uint16_t held_rank = 0;
  std::uint16_t acquired_rank = 0;
};
using EdgeHook = void (*)(const EdgeEvent&);
void set_edge_hook(EdgeHook hook) noexcept;

/// When false, a detected violation is counted (see violations()) and
/// reported to stderr but does not abort. Default true — production
/// debug builds should die loudly. Tests use the non-fatal mode to probe
/// the detector without EXPECT_DEATH's fork cost.
void set_abort_on_violation(bool abort_on_violation) noexcept;

}  // namespace cq::common::lockorder
