// Fixed log2-bucketed latency histogram, split out of observability.hpp so
// layers *below* the observability core can record into one. The lock
// profiler (common/lock_profile.hpp) is included by sync.hpp, which
// observability.hpp itself builds on — this header therefore depends on
// nothing but <atomic> and friends, breaking the cycle.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace cq::common::obs {

/// Fixed log2-bucketed histogram of non-negative integer samples (the
/// engine records latencies in microseconds). Sample v lands in bucket
/// bit_width(v): [0], [1], [2,3], [4,7], ... so 64 buckets cover the full
/// uint64 range with <2x relative error, refined by linear interpolation
/// inside the winning bucket and clamped to the observed [min, max].
///
/// Thread-safe: the parallel evaluation engine records from worker threads
/// (dra_exec_us, eval_batch_us), so every field is a relaxed atomic.
/// record() is wait-free except for the min/max CAS loops; readers see a
/// possibly-torn but monotone view (count may momentarily lag sum), which
/// is fine for monitoring and exact once the writers quiesce.
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 65;  // bit_width in [0, 64]

  Histogram() = default;
  Histogram(const Histogram& other) noexcept { copy_from(other); }
  Histogram& operator=(const Histogram& other) noexcept {
    if (this != &other) copy_from(other);
    return *this;
  }

  void record(std::uint64_t value) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return load(count_); }
  [[nodiscard]] std::uint64_t sum() const noexcept { return load(sum_); }
  /// Raw count of bucket b (samples with bit_width == b).
  [[nodiscard]] std::uint64_t bucket(std::size_t b) const noexcept {
    return b < kBuckets ? load(buckets_[b]) : 0;
  }
  [[nodiscard]] std::uint64_t min() const noexcept {
    return load(count_) == 0 ? 0 : load(min_);
  }
  [[nodiscard]] std::uint64_t max() const noexcept { return load(max_); }
  [[nodiscard]] double mean() const noexcept {
    const std::uint64_t n = load(count_);
    return n == 0 ? 0.0 : static_cast<double>(load(sum_)) / static_cast<double>(n);
  }

  /// Estimated value at percentile p in [0, 100]. 0 when empty; exact for
  /// a single sample (interpolation clamps to [min, max]).
  [[nodiscard]] double percentile(double p) const noexcept;
  [[nodiscard]] double p50() const noexcept { return percentile(50); }
  [[nodiscard]] double p95() const noexcept { return percentile(95); }
  [[nodiscard]] double p99() const noexcept { return percentile(99); }

  void reset() noexcept;

  /// One-line summary: count/mean/p50/p95/p99/max.
  [[nodiscard]] std::string to_string() const;

 private:
  static std::uint64_t load(const std::atomic<std::uint64_t>& v) noexcept {
    return v.load(std::memory_order_relaxed);
  }
  void copy_from(const Histogram& other) noexcept;

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  // Sentinel UINT64_MAX = "no sample yet"; min() hides it behind count_.
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
};

}  // namespace cq::common::obs
