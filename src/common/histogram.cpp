#include "common/histogram.hpp"

#include <bit>
#include <cmath>
#include <sstream>

namespace cq::common::obs {

void Histogram::record(std::uint64_t value) noexcept {
  buckets_[static_cast<std::size_t>(std::bit_width(value))].fetch_add(
      1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  std::uint64_t seen = min_.load(std::memory_order_relaxed);
  while (value < seen &&
         !min_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
  seen = max_.load(std::memory_order_relaxed);
  while (value > seen &&
         !max_.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

void Histogram::copy_from(const Histogram& other) noexcept {
  for (std::size_t b = 0; b < kBuckets; ++b) {
    buckets_[b].store(load(other.buckets_[b]), std::memory_order_relaxed);
  }
  count_.store(load(other.count_), std::memory_order_relaxed);
  sum_.store(load(other.sum_), std::memory_order_relaxed);
  min_.store(load(other.min_), std::memory_order_relaxed);
  max_.store(load(other.max_), std::memory_order_relaxed);
}

double Histogram::percentile(double p) const noexcept {
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  if (p <= 0) return static_cast<double>(min());
  if (p >= 100) return static_cast<double>(max());
  // 1-based rank of the sample at percentile p (nearest-rank).
  const auto rank =
      static_cast<std::uint64_t>(std::ceil(p / 100.0 * static_cast<double>(n)));
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    const std::uint64_t in_bucket = bucket(b);
    if (in_bucket == 0) continue;
    if (cum + in_bucket < rank) {
      cum += in_bucket;
      continue;
    }
    // Bucket b holds values with bit_width == b: [2^(b-1), 2^b - 1] (b>=1),
    // or exactly 0 (b==0). Interpolate by rank position within the bucket.
    const double lo = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b) - 1);
    const double hi = b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b)) - 1.0;
    const double frac = in_bucket <= 1 ? 0.0
                                       : static_cast<double>(rank - cum - 1) /
                                             static_cast<double>(in_bucket - 1);
    double v = lo + frac * (hi - lo);
    // Clamp to observed range: makes single-sample and tail estimates exact.
    v = std::max(v, static_cast<double>(min()));
    v = std::min(v, static_cast<double>(max()));
    return v;
  }
  return static_cast<double>(max());
}

void Histogram::reset() noexcept {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(~std::uint64_t{0}, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  os << "count=" << count() << " mean=" << mean() << " p50=" << p50()
     << " p95=" << p95() << " p99=" << p99() << " max=" << max();
  return os.str();
}

}  // namespace cq::common::obs
