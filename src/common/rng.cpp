#include "common/rng.hpp"

#include <cmath>

#include "common/error.hpp"

namespace cq::common {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double zeta(std::uint64_t n, double theta) {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(static_cast<double>(i), theta);
  return sum;
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
}

std::uint64_t Rng::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw InvalidArgument("Rng::uniform_int: lo > hi");
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  return lo + static_cast<std::int64_t>(next() % span);
}

double Rng::uniform01() noexcept {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform_real(double lo, double hi) {
  if (lo > hi) throw InvalidArgument("Rng::uniform_real: lo > hi");
  return lo + uniform01() * (hi - lo);
}

bool Rng::chance(double p) noexcept { return uniform01() < p; }

std::uint64_t Rng::zipf(std::uint64_t n, double theta) {
  if (n == 0) throw InvalidArgument("Rng::zipf: n must be positive");
  if (theta <= 0.0) return next() % n;
  if (n != zipf_n_ || theta != zipf_theta_) {
    zipf_n_ = n;
    zipf_theta_ = theta;
    zipf_zetan_ = zeta(n, theta);
    const double zeta2 = zeta(2, theta);
    zipf_alpha_ = 1.0 / (1.0 - theta);
    zipf_eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n), 1.0 - theta)) /
                (1.0 - zeta2 / zipf_zetan_);
  }
  const double u = uniform01();
  const double uz = u * zipf_zetan_;
  if (uz < 1.0) return 0;
  if (uz < 1.0 + std::pow(0.5, theta)) return 1;
  return static_cast<std::uint64_t>(
      static_cast<double>(n) *
      std::pow(zipf_eta_ * u - zipf_eta_ + 1.0, zipf_alpha_));
}

std::string Rng::string(std::size_t length) {
  std::string out(length, 'a');
  for (auto& c : out) c = static_cast<char>('a' + next() % 26);
  return out;
}

std::size_t Rng::index(std::size_t size) {
  if (size == 0) throw InvalidArgument("Rng::index: empty range");
  return static_cast<std::size_t>(next() % size);
}

}  // namespace cq::common
