// Structured event journal: a bounded ring of engine lifecycle events —
// CQ installed / trigger fired / suppressed / delivered / terminated, sync
// rounds, GC passes — each carrying a severity, a host timestamp
// (obs::now_ns) and the engine's *logical* clock instant, so journal lines
// correlate with commit timestamps and trace spans.
//
// Like the trace ring, the journal is mutex-guarded (the introspection
// HTTP server reads it from its own thread) and bounded: when full, the
// oldest events rotate out and are counted in dropped(). Producers guard
// on obs::enabled() — a disabled engine performs no journal writes.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/sync.hpp"

namespace cq::common::obs {

enum class Severity : std::uint8_t { kDebug = 0, kInfo, kWarn, kError };

[[nodiscard]] const char* to_string(Severity s) noexcept;

/// One journal entry. `kind` is a stable machine-readable tag
/// ("cq_installed", "sync_round", ...); `subject` names the entity (CQ
/// name, source name); `detail` is free-form human text.
struct Event {
  std::uint64_t seq = 0;       // 1-based, process-lifetime ordinal
  std::uint64_t wall_ns = 0;   // obs::now_ns() at record time
  std::int64_t logical = 0;    // engine logical-clock ticks
  std::uint64_t trace_id = 0;  // owning commit's trace id; 0 = none
  Severity severity = Severity::kInfo;
  std::string kind;
  std::string subject;
  std::string detail;
};

class EventLog {
 public:
  static constexpr std::size_t kDefaultCapacity = 4096;

  explicit EventLog(std::size_t capacity = kDefaultCapacity);

  /// Append one event; assigns seq and wall_ns. `trace_id` joins the line
  /// to the owning commit's trace (0 = outside any commit). Thread-safe.
  void record(Severity severity, std::string kind, std::string subject,
              std::string detail, std::int64_t logical = 0,
              std::uint64_t trace_id = 0);

  /// The newest `n` events with seq > `since_seq`, oldest first (all
  /// events when n >= size and since_seq = 0).
  [[nodiscard]] std::vector<Event> tail(std::size_t n,
                                        std::uint64_t since_seq = 0) const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const;
  /// Events rotated out because the ring was full.
  [[nodiscard]] std::uint64_t dropped() const;
  /// Events ever recorded.
  [[nodiscard]] std::uint64_t total() const;

  void clear();
  /// Resize the ring; drops collected events.
  void set_capacity(std::size_t capacity);

  /// Newest `n` events with seq > `since_seq` as NDJSON — one JSON object
  /// per line:
  ///   {"seq":1,"wall_ns":...,"logical":...,"trace_id":...,
  ///    "severity":"info","kind":"cq_installed","subject":"watch",
  ///    "detail":"..."}
  [[nodiscard]] std::string to_ndjson(std::size_t n,
                                      std::uint64_t since_seq = 0) const;

 private:
  mutable Mutex mu_{"event_log", lockorder::LockRank::kEventLog};
  std::vector<Event> ring_ CQ_GUARDED_BY(mu_);
  std::size_t capacity_ CQ_GUARDED_BY(mu_);
  std::size_t next_ CQ_GUARDED_BY(mu_) = 0;     // ring index of the next write
  std::uint64_t total_ CQ_GUARDED_BY(mu_) = 0;  // events ever recorded
};

}  // namespace cq::common::obs
