#include "common/logging.hpp"

#include <atomic>
#include <iostream>

namespace cq::common {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kOff};

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) noexcept { g_level.store(level); }
LogLevel log_level() noexcept { return g_level.load(); }

void log(LogLevel level, const std::string& message) {
  if (level < g_level.load()) return;
  std::clog << "[" << level_name(level) << "] " << message << "\n";
}

}  // namespace cq::common
