#include "common/lock_order.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#define CQ_LOCKORDER_HAVE_BACKTRACE 1
#endif
#endif

namespace cq::common::lockorder {

namespace {

// ----------------------------------------------------------- site table --

struct SiteSlot {
  std::atomic<const char*> name{nullptr};
  std::atomic<std::uint16_t> rank{0};
};

SiteSlot g_sites[kMaxSites];
std::atomic<std::size_t> g_site_count{0};

// Edge matrix over site ids: g_edges[from][to] counts observations of
// "from held while to acquired". Relaxed atomics — the graph is monotone
// and approximate counts are fine; *existence* transitions (0 -> 1) drive
// the cycle check and the journal hook.
std::atomic<std::uint64_t> g_edges[kMaxSites][kMaxSites];

std::atomic<std::uint64_t> g_violations{0};
std::atomic<bool> g_abort{true};
std::atomic<EdgeHook> g_edge_hook{nullptr};

// ------------------------------------------------------ held-lock stack --

constexpr std::size_t kMaxHeld = 16;
constexpr int kMaxFrames = 12;

struct Held {
  const void* addr = nullptr;
  const char* name = nullptr;
  std::uint16_t rank = 0;
  std::uint32_t order_key = 0;
  std::uint32_t site = kNoSite;
  int frames = 0;
  void* stack[kMaxFrames];
};

struct ThreadState {
  Held held[kMaxHeld];
  std::size_t depth = 0;
  std::size_t overflow = 0;  // acquisitions dropped past kMaxHeld
  bool in_checker = false;   // re-entrancy guard (edge hook, reporting)
};

ThreadState& tls() noexcept {
  thread_local ThreadState state;
  return state;
}

void capture_stack(Held& h) noexcept {
#if defined(CQ_LOCKORDER_HAVE_BACKTRACE)
  h.frames = backtrace(h.stack, kMaxFrames);
#else
  h.frames = 0;
#endif
}

void dump_stack(const Held& h) noexcept {
#if defined(CQ_LOCKORDER_HAVE_BACKTRACE)
  if (h.frames > 0) backtrace_symbols_fd(h.stack, h.frames, 2 /* stderr */);
#else
  (void)h;
#endif
}

void dump_current_stack() noexcept {
#if defined(CQ_LOCKORDER_HAVE_BACKTRACE)
  void* frames[kMaxFrames];
  const int n = backtrace(frames, kMaxFrames);
  if (n > 0) backtrace_symbols_fd(frames, n, 2 /* stderr */);
#endif
}

/// Report a violation: both sites, both ranks, the held chain, the held
/// lock's acquisition backtrace and the current one. Aborts unless tests
/// switched to counting mode.
void violation(const char* what, const ThreadState& state, const Held& held,
               const char* acq_name, std::uint16_t acq_rank) noexcept {
  std::fprintf(stderr,
               "[lockorder] VIOLATION: %s\n"
               "  acquiring site \"%s\" (rank %u) while holding site \"%s\" "
               "(rank %u)\n  held chain:",
               what, acq_name != nullptr ? acq_name : "<unnamed>", acq_rank,
               held.name != nullptr ? held.name : "<unnamed>", held.rank);
  for (std::size_t i = 0; i < state.depth; ++i) {
    std::fprintf(stderr, " %s(%u)",
                 state.held[i].name != nullptr ? state.held[i].name : "?",
                 state.held[i].rank);
  }
  std::fprintf(stderr, "\n  stack of the held acquisition (\"%s\"):\n",
               held.name != nullptr ? held.name : "<unnamed>");
  dump_stack(held);
  std::fprintf(stderr, "  stack of the violating acquisition (\"%s\"):\n",
               acq_name != nullptr ? acq_name : "<unnamed>");
  dump_current_stack();
  g_violations.fetch_add(1, std::memory_order_relaxed);
  if (g_abort.load(std::memory_order_relaxed)) std::abort();
}

/// Is `to` reachable from `from` through observed edges? Bounded DFS over
/// the atomic matrix (no locks; the graph only ever grows, so a "yes" is
/// definitive and a racing "no" at worst delays detection to the next
/// observation of the same edge).
bool reachable(std::uint32_t from, std::uint32_t to) noexcept {
  const std::size_t n = g_site_count.load(std::memory_order_acquire);
  bool visited[kMaxSites] = {};
  std::uint32_t work[kMaxSites];
  std::size_t top = 0;
  work[top++] = from;
  visited[from] = true;
  while (top > 0) {
    const std::uint32_t cur = work[--top];
    if (cur == to) return true;
    for (std::uint32_t next = 0; next < n; ++next) {
      if (!visited[next] &&
          g_edges[cur][next].load(std::memory_order_relaxed) != 0) {
        visited[next] = true;
        work[top++] = next;
      }
    }
  }
  return false;
}

void record_edge(ThreadState& state, const Held& held, const char* acq_name,
                 std::uint16_t acq_rank, std::uint32_t acq_site) noexcept {
  if (held.site == kNoSite || acq_site == kNoSite || held.site == acq_site) {
    return;
  }
  const std::uint64_t prev =
      g_edges[held.site][acq_site].fetch_add(1, std::memory_order_relaxed);
  if (prev != 0) return;  // edge already known
  // First observation: does the reverse direction already exist (directly
  // or transitively)? Then this acquisition just closed an ordering cycle.
  if (reachable(acq_site, held.site)) {
    violation("lock-order cycle closed by this acquisition", state, held,
              acq_name, acq_rank);
  }
  if (EdgeHook hook = g_edge_hook.load(std::memory_order_acquire)) {
    // The hook may take (already-ranked) journal locks; mark the thread so
    // those acquisitions skip the checker instead of recursing.
    state.in_checker = true;
    const EdgeEvent event{held.name, acq_name, held.rank, acq_rank};
    hook(event);
    state.in_checker = false;
  }
}

void append_escaped(std::string& out, const char* s) {
  for (; *s != '\0'; ++s) {
    if (*s == '"' || *s == '\\') out.push_back('\\');
    out.push_back(*s);
  }
}

}  // namespace

std::uint32_t register_site(const char* name, std::uint16_t rank) noexcept {
  if (name == nullptr) return kNoSite;
  const std::size_t n = g_site_count.load(std::memory_order_acquire);
  for (std::size_t i = 0; i < n; ++i) {
    const char* existing = g_sites[i].name.load(std::memory_order_acquire);
    if (existing == name ||
        (existing != nullptr && std::strcmp(existing, name) == 0)) {
      return static_cast<std::uint32_t>(i);
    }
  }
  for (;;) {
    std::size_t slot = g_site_count.load(std::memory_order_relaxed);
    if (slot >= kMaxSites) return kNoSite;
    if (!g_site_count.compare_exchange_weak(slot, slot + 1,
                                            std::memory_order_acq_rel)) {
      continue;
    }
    g_sites[slot].rank.store(rank, std::memory_order_relaxed);
    g_sites[slot].name.store(name, std::memory_order_release);
    return static_cast<std::uint32_t>(slot);
  }
}

void on_lock(const void* addr, const char* name, std::uint16_t rank,
             std::uint32_t order_key, std::uint32_t site,
             bool blocking) noexcept {
  ThreadState& state = tls();
  if (state.in_checker) return;
  // Self-deadlock and rank monotonicity, against everything held. Checked
  // *before* blocking on the mutex — the point is to die with a report
  // instead of hanging.
  for (std::size_t i = 0; i < state.depth; ++i) {
    const Held& h = state.held[i];
    if (h.addr == addr && blocking) {
      violation("self-deadlock: relocking a mutex this thread already holds",
                state, h, name, rank);
    }
    if (blocking && rank != 0 && h.rank != 0) {
      if (h.rank > rank) {
        violation("rank inversion: acquisition rank must strictly increase",
                  state, h, name, rank);
      } else if (h.rank == rank) {
        // Cohort rule: equal-rank blocking is legal only between members
        // of one ordered array (both keys nonzero) taken in strictly
        // ascending key order — e.g. the commit shards by shard index.
        if (h.order_key == 0 || order_key == 0 || h.order_key >= order_key) {
          violation(
              "same-rank acquisition outside ascending cohort order "
              "(equal ranks need strictly increasing nonzero order keys)",
              state, h, name, rank);
        }
      }
    }
  }
  for (std::size_t i = 0; i < state.depth; ++i) {
    record_edge(state, state.held[i], name, rank, site);
  }
  if (state.depth >= kMaxHeld) {
    ++state.overflow;
    return;
  }
  Held& h = state.held[state.depth++];
  h.addr = addr;
  h.name = name;
  h.rank = rank;
  h.order_key = order_key;
  h.site = site;
  capture_stack(h);
}

void on_unlock(const void* addr) noexcept {
  ThreadState& state = tls();
  if (state.in_checker) return;
  if (state.overflow > 0) {
    // Past-capacity acquisitions were never pushed; assume LIFO for the
    // overflow region (it is test-scaffolding depth anyway).
    --state.overflow;
    return;
  }
  for (std::size_t i = state.depth; i-- > 0;) {
    if (state.held[i].addr != addr) continue;
    for (std::size_t j = i + 1; j < state.depth; ++j) {
      state.held[j - 1] = state.held[j];
    }
    --state.depth;
    return;
  }
  // Unlock of a mutex we never saw locked: tolerated (e.g. the checker
  // was enabled mid-hold, or the stack overflowed past kMaxHeld).
}

std::size_t held_depth() noexcept { return tls().depth; }

std::size_t site_count() noexcept {
  const std::size_t n = g_site_count.load(std::memory_order_acquire);
  std::size_t ready = 0;
  while (ready < n &&
         g_sites[ready].name.load(std::memory_order_acquire) != nullptr) {
    ++ready;
  }
  return ready;
}

SiteInfo site(std::size_t i) noexcept {
  SiteInfo info;
  if (i < kMaxSites) {
    info.name = g_sites[i].name.load(std::memory_order_acquire);
    info.rank = g_sites[i].rank.load(std::memory_order_relaxed);
  }
  return info;
}

std::uint64_t edge_count(std::uint32_t from, std::uint32_t to) noexcept {
  if (from >= kMaxSites || to >= kMaxSites) return 0;
  return g_edges[from][to].load(std::memory_order_relaxed);
}

std::uint64_t violations() noexcept {
  return g_violations.load(std::memory_order_relaxed);
}

std::string to_json() {
  const std::size_t n = site_count();
  std::string out = "{\"enabled\":";
  out += compiled_in() ? "true" : "false";
  out += ",\"sites\":[";
  for (std::size_t i = 0; i < n; ++i) {
    const SiteInfo s = site(i);
    if (i > 0) out.push_back(',');
    out += "{\"id\":" + std::to_string(i) + ",\"name\":\"";
    append_escaped(out, s.name != nullptr ? s.name : "");
    out += "\",\"rank\":" + std::to_string(s.rank) + "}";
  }
  out += "],\"edges\":[";
  bool first = true;
  for (std::size_t from = 0; from < n; ++from) {
    for (std::size_t to = 0; to < n; ++to) {
      const std::uint64_t count =
          g_edges[from][to].load(std::memory_order_relaxed);
      if (count == 0) continue;
      if (!first) out.push_back(',');
      first = false;
      out += "{\"from\":\"";
      append_escaped(out, site(from).name != nullptr ? site(from).name : "");
      out += "\",\"to\":\"";
      append_escaped(out, site(to).name != nullptr ? site(to).name : "");
      out += "\",\"count\":" + std::to_string(count) + "}";
    }
  }
  out += "]}";
  return out;
}

std::string to_dot() {
  const std::size_t n = site_count();
  std::string out = "digraph lockorder {\n  rankdir=TB;\n";
  for (std::size_t i = 0; i < n; ++i) {
    const SiteInfo s = site(i);
    out += "  \"";
    append_escaped(out, s.name != nullptr ? s.name : "");
    out += "\" [label=\"";
    append_escaped(out, s.name != nullptr ? s.name : "");
    out += "\\nrank " + std::to_string(s.rank) + "\"];\n";
  }
  for (std::size_t from = 0; from < n; ++from) {
    for (std::size_t to = 0; to < n; ++to) {
      const std::uint64_t count =
          g_edges[from][to].load(std::memory_order_relaxed);
      if (count == 0) continue;
      out += "  \"";
      append_escaped(out, site(from).name != nullptr ? site(from).name : "");
      out += "\" -> \"";
      append_escaped(out, site(to).name != nullptr ? site(to).name : "");
      out += "\" [label=\"" + std::to_string(count) + "\"];\n";
    }
  }
  out += "}\n";
  return out;
}

void reset_graph() noexcept {
  for (auto& row : g_edges) {
    for (auto& cell : row) cell.store(0, std::memory_order_relaxed);
  }
}

void set_edge_hook(EdgeHook hook) noexcept {
  g_edge_hook.store(hook, std::memory_order_release);
}

void set_abort_on_violation(bool abort_on_violation) noexcept {
  g_abort.store(abort_on_violation, std::memory_order_relaxed);
}

}  // namespace cq::common::lockorder
