// A dependency-free fixed thread pool for the parallel CQ evaluation
// engine. Deliberately minimal: the CQ manager is the only client, and its
// dispatch pattern is "fan a batch of closures out, wait for all of them"
// once per commit — so the pool exposes exactly that (run_all) instead of
// a general future-returning submit().
//
// The calling thread *participates*: run_all(tasks) drains the queue on
// the caller too, so a pool constructed with `workers = threads - 1`
// yields exactly `threads` concurrent lanes and a pool with zero workers
// degenerates to a plain sequential loop (no thread ever starts).
//
// Built on the annotated cq::common::Mutex/CondVar from sync.hpp — this
// file is the sanctioned home of std::thread in the tree
// (scripts/lint_invariants.py rejects raw std::thread outside src/common).
#pragma once

#include <cstddef>
#include <functional>
#include <thread>
#include <vector>

#include "common/sync.hpp"

namespace cq::common {

class ThreadPool {
 public:
  /// Start `workers` threads (0 is valid: run_all then executes inline).
  explicit ThreadPool(std::size_t workers);

  /// Joins all workers. Must not be called while a run_all is in flight.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execute every task, the caller working alongside the pool threads,
  /// and return when all of them have finished. Tasks must not throw —
  /// wrap fallible work and capture its exception into a result slot.
  /// Not reentrant: one run_all at a time (the CQ manager's dispatch is
  /// already serialized by the engine mutex).
  void run_all(std::vector<std::function<void()>> tasks);

  [[nodiscard]] std::size_t workers() const noexcept { return threads_.size(); }

 private:
  void worker_loop();
  /// Pop + run queued tasks until the queue is empty. Returns with mu_ held.
  void drain() CQ_REQUIRES(mu_);

  mutable Mutex mu_;
  CondVar work_cv_;         // signalled when tasks arrive or stop_ flips
  CondVar done_cv_;         // signalled when pending_ reaches zero
  std::vector<std::function<void()>> queue_ CQ_GUARDED_BY(mu_);
  std::size_t pending_ CQ_GUARDED_BY(mu_) = 0;  // queued + running tasks
  bool stop_ CQ_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
};

}  // namespace cq::common
