// A dependency-free fixed thread pool for the parallel CQ evaluation
// engine. Deliberately minimal: the CQ manager is the only client, and its
// dispatch pattern is "fan a batch of closures out, wait for all of them"
// once per commit — so the pool exposes exactly that (run_all) instead of
// a general future-returning submit().
//
// The calling thread *participates*: run_all(tasks) drains the queue on
// the caller too, so a pool constructed with `workers = threads - 1`
// yields exactly `threads` concurrent lanes and a pool with zero workers
// degenerates to a plain sequential loop (no thread ever starts).
//
// Scheduler observability (all gated on obs::enabled() at enqueue time):
// run_all stamps each task with the enqueue instant and the caller's
// SpanContext; whichever lane pops the task records the queue wait into
// pool_task_wait_us and adopts the context, so worker-side spans carry the
// dispatching commit's trace id onto the worker's own lane track. Each
// lane also keeps a cumulative busy clock, published as
// pool_lane_busy_us / pool_lane_utilization_pct gauges through a registry
// refresh hook at scrape time.
//
// Built on the annotated cq::common::Mutex/CondVar from sync.hpp — this
// file is the sanctioned home of std::thread in the tree
// (scripts/lint_invariants.py rejects raw std::thread outside src/common).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <thread>
#include <vector>

#include "common/observability.hpp"
#include "common/sync.hpp"

namespace cq::common {

class ThreadPool {
 public:
  /// Start `workers` threads (0 is valid: run_all then executes inline).
  explicit ThreadPool(std::size_t workers);

  /// Joins all workers. Must not be called while a run_all is in flight.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execute every task, the caller working alongside the pool threads,
  /// and return when all of them have finished. Tasks must not throw —
  /// wrap fallible work and capture its exception into a result slot.
  /// Not reentrant: one run_all at a time (the CQ manager's dispatch is
  /// already serialized by the engine mutex).
  void run_all(std::vector<std::function<void()>> tasks);

  [[nodiscard]] std::size_t workers() const noexcept { return threads_.size(); }

  /// Concurrent execution lanes: the workers plus the participating
  /// caller.
  [[nodiscard]] std::size_t lanes() const noexcept { return threads_.size() + 1; }

  /// Cumulative busy time of one lane (nanoseconds spent running tasks
  /// while tracing was enabled). Lane i < workers() is worker i; lane
  /// workers() is the caller's.
  [[nodiscard]] std::uint64_t lane_busy_ns(std::size_t lane) const noexcept {
    return lane < busy_ns_.size() ? busy_ns_[lane].load(std::memory_order_relaxed)
                                  : 0;
  }

 private:
  /// One queued closure plus the tracing envelope captured at enqueue
  /// (enqueue_ns == 0 means tracing was off; the execution path then adds
  /// zero overhead).
  struct Task {
    std::function<void()> fn;
    std::uint64_t enqueue_ns = 0;
    obs::SpanContext ctx{};
  };

  void worker_loop(std::size_t lane);
  /// Pop + run queued tasks until the queue is empty. Returns with mu_ held.
  void drain(std::size_t lane) CQ_REQUIRES(mu_);
  /// Execute one task outside the lock: queue-wait accounting, context
  /// adoption, busy-clock update.
  void run_task(Task task, std::size_t lane);
  /// Registry refresh hook: publish per-lane busy/utilization gauges.
  void publish_lane_gauges();

  mutable Mutex mu_{"pool", lockorder::LockRank::kPool};
  CondVar work_cv_;         // signalled when tasks arrive or stop_ flips
  CondVar done_cv_;         // signalled when pending_ reaches zero
  std::vector<Task> queue_ CQ_GUARDED_BY(mu_);
  std::size_t pending_ CQ_GUARDED_BY(mu_) = 0;  // queued + running tasks
  bool stop_ CQ_GUARDED_BY(mu_) = false;
  std::vector<std::thread> threads_;
  std::vector<std::atomic<std::uint64_t>> busy_ns_;  // per lane, see lane_busy_ns
  std::uint64_t created_ns_ = 0;  // for lifetime utilization
  std::uint64_t hook_id_ = 0;     // refresh-hook registration
};

}  // namespace cq::common
