#include "algebra/ops.hpp"

#include "algebra/predicate.hpp"
#include "common/error.hpp"
#include "common/observability.hpp"
#include "relation/index.hpp"

namespace cq::alg {

using common::Metrics;
using rel::Relation;
using rel::Tuple;

namespace {
void count(Metrics* m, common::metric::Id id, std::int64_t v) {
  if (m != nullptr && v != 0) m->add(id, v);
}
}  // namespace

Relation select(const Relation& input, const Expr& predicate, Metrics* metrics) {
  common::obs::Span span("alg.select");
  Relation out(input.schema());
  for (const auto& row : input.rows()) {
    if (predicate.eval_bool(row, input.schema())) out.append(row);
  }
  count(metrics, common::metric::kRowsScanned, static_cast<std::int64_t>(input.size()));
  count(metrics, common::metric::kRowsOutput, static_cast<std::int64_t>(out.size()));
  return out;
}

Relation project(const Relation& input, const std::vector<std::string>& columns,
                 bool dedup, Metrics* metrics) {
  common::obs::Span span("alg.project");
  std::vector<std::size_t> indexes;
  indexes.reserve(columns.size());
  for (const auto& c : columns) indexes.push_back(input.schema().index_of(c));
  Relation out(input.schema().project(columns));
  for (const auto& row : input.rows()) {
    Tuple projected = row.project(indexes);
    if (!dedup) projected.set_tid(row.tid());
    out.append(std::move(projected));
  }
  count(metrics, common::metric::kRowsScanned, static_cast<std::int64_t>(input.size()));
  if (dedup) out = distinct(out);
  count(metrics, common::metric::kRowsOutput, static_cast<std::int64_t>(out.size()));
  return out;
}

Relation nested_loop_join(const Relation& left, const Relation& right,
                          const Expr* predicate, Metrics* metrics) {
  common::obs::Span span("alg.nested_loop_join");
  const rel::Schema schema = left.schema().concat(right.schema());
  Relation out(schema);
  for (const auto& l : left.rows()) {
    for (const auto& r : right.rows()) {
      Tuple combined = l.concat(r);
      count(metrics, common::metric::kTuplesCompared, 1);
      if (predicate == nullptr || predicate->eval_bool(combined, schema)) {
        out.append(std::move(combined));
      }
    }
  }
  count(metrics, common::metric::kRowsScanned,
        static_cast<std::int64_t>(left.size() + right.size()));
  count(metrics, common::metric::kRowsOutput, static_cast<std::int64_t>(out.size()));
  return out;
}

Relation hash_join(const Relation& left, const Relation& right,
                   const std::vector<std::pair<std::size_t, std::size_t>>& equi_pairs,
                   const Expr* residual, Metrics* metrics) {
  if (equi_pairs.empty()) {
    throw common::InvalidArgument("hash_join requires at least one equi pair");
  }
  common::obs::Span span("alg.hash_join");
  const rel::Schema schema = left.schema().concat(right.schema());
  Relation out(schema);

  std::vector<std::size_t> left_cols;
  std::vector<std::size_t> right_cols;
  for (const auto& [l, r] : equi_pairs) {
    left_cols.push_back(l);
    right_cols.push_back(r);
  }

  // Build on the smaller side; probe with the larger.
  const bool build_left = left.size() <= right.size();
  const Relation& build = build_left ? left : right;
  const Relation& probe = build_left ? right : left;
  const auto& build_cols = build_left ? left_cols : right_cols;
  const auto& probe_cols = build_left ? right_cols : left_cols;

  rel::HashIndex index(build, build_cols);
  for (const auto& p : probe.rows()) {
    for (auto pos : index.probe(p, probe_cols)) {
      const Tuple& b = build.row(pos);
      Tuple combined = build_left ? b.concat(p) : p.concat(b);
      count(metrics, common::metric::kTuplesCompared, 1);
      if (residual == nullptr || residual->eval_bool(combined, schema)) {
        out.append(std::move(combined));
      }
    }
  }
  count(metrics, common::metric::kRowsScanned,
        static_cast<std::int64_t>(left.size() + right.size()));
  count(metrics, common::metric::kRowsOutput, static_cast<std::int64_t>(out.size()));
  return out;
}

Relation join(const Relation& left, const Relation& right, const ExprPtr& predicate,
              Metrics* metrics) {
  JoinAnalysis analysis = analyze_join(predicate, left.schema(), right.schema());
  // Push single-side conjuncts down before the join proper.
  const Relation* l = &left;
  const Relation* r = &right;
  Relation lf;
  Relation rf;
  if (!analysis.left_only.empty()) {
    lf = select(left, *conjoin(analysis.left_only), metrics);
    l = &lf;
  }
  if (!analysis.right_only.empty()) {
    rf = select(right, *conjoin(analysis.right_only), metrics);
    r = &rf;
  }
  if (!analysis.equi_pairs.empty()) {
    const ExprPtr residual = analysis.residual_predicate();
    return hash_join(*l, *r, analysis.equi_pairs,
                     is_always_true(residual) ? nullptr : residual.get(), metrics);
  }
  const ExprPtr residual = analysis.residual_predicate();
  return nested_loop_join(*l, *r, is_always_true(residual) ? nullptr : residual.get(),
                          metrics);
}

Relation union_all(const Relation& a, const Relation& b) {
  if (!a.schema().union_compatible(b.schema())) {
    throw common::SchemaMismatch("union_all: incompatible schemas " +
                                 a.schema().to_string() + " vs " + b.schema().to_string());
  }
  Relation out(a.schema());
  for (const auto& row : a.rows()) out.append(row);
  for (const auto& row : b.rows()) {
    Tuple copy = row;  // keep values; drop tid collisions to appended copies
    out.append(std::move(copy));
  }
  return out;
}

Relation difference(const Relation& a, const Relation& b) {
  if (!a.schema().union_compatible(b.schema())) {
    throw common::SchemaMismatch("difference: incompatible schemas " +
                                 a.schema().to_string() + " vs " +
                                 b.schema().to_string());
  }
  rel::TupleBag to_remove;
  for (const auto& row : b.rows()) to_remove.add(row, +1);
  Relation out(a.schema());
  // Count occurrences of each value-row in a as we stream, removing up to
  // the multiplicity present in b.
  rel::TupleBag removed;
  for (const auto& row : a.rows()) {
    if (removed.count(row) < to_remove.count(row)) {
      removed.add(row, +1);
    } else {
      out.append(row);
    }
  }
  return out;
}

Relation intersect(const Relation& a, const Relation& b) {
  if (!a.schema().union_compatible(b.schema())) {
    throw common::SchemaMismatch("intersect: incompatible schemas");
  }
  rel::TupleBag available;
  for (const auto& row : b.rows()) available.add(row, +1);
  rel::TupleBag taken;
  Relation out(a.schema());
  for (const auto& row : a.rows()) {
    if (taken.count(row) < available.count(row)) {
      taken.add(row, +1);
      out.append(row);
    }
  }
  return out;
}

Relation distinct(const Relation& input) {
  rel::TupleBag seen;
  Relation out(input.schema());
  for (const auto& row : input.rows()) {
    if (seen.count(row) == 0) {
      seen.add(row, +1);
      out.append(row);
    }
  }
  return out;
}

}  // namespace cq::alg
