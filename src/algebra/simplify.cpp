#include "algebra/simplify.hpp"

#include "algebra/predicate.hpp"

#include "common/error.hpp"

namespace cq::alg {

using rel::Value;
using rel::ValueType;

namespace {

bool is_literal(const ExprPtr& e, bool value) {
  return e->kind() == Expr::Kind::kLiteral &&
         e->literal().type() == ValueType::kBool && e->literal().as_bool() == value;
}

/// Fold a column-free expression to its literal value. Type errors (e.g.
/// arithmetic over booleans) keep the expression unfolded so they still
/// surface at evaluation time, exactly as without simplification.
ExprPtr fold_constant(const ExprPtr& e) {
  static const rel::Schema kEmptySchema;
  static const rel::Tuple kEmptyTuple;
  try {
    return Expr::lit(e->eval(kEmptyTuple, kEmptySchema));
  } catch (const common::Error&) {
    return e;
  }
}

/// Core rewriter. `boolean_context` is true when this node's value is
/// consumed through eval_bool() — the root of a predicate and the children
/// of AND/OR/NOT. Rewrites that replace a logical node with a non-literal
/// child (x AND true -> x, NOT NOT x -> x) change the node's *value* when
/// x is not boolean, so they require boolean context; rewrites whose
/// replacement is itself boolean-valued (short-circuits to a literal,
/// De Morgan) are safe anywhere.
ExprPtr simplify_impl(const ExprPtr& expression, bool boolean_context) {
  switch (expression->kind()) {
    case Expr::Kind::kLiteral:
    case Expr::Kind::kColumn:
      return expression;
    case Expr::Kind::kCompare:
    case Expr::Kind::kArith:
    case Expr::Kind::kLogical:
    case Expr::Kind::kIsNull:
    case Expr::Kind::kIn:
    case Expr::Kind::kBetween:
    case Expr::Kind::kLike:
      break;  // rewritten below
  }

  // Whole-subtree constant folding first: evaluation with no rows bound is
  // exactly the semantics a constant subexpression has at runtime.
  if (is_constant(expression)) return fold_constant(expression);

  // Recurse. Logical operators consume their children via eval_bool; every
  // other operator consumes values.
  const bool child_context = expression->kind() == Expr::Kind::kLogical;
  std::vector<ExprPtr> children;
  children.reserve(expression->children().size());
  bool changed = false;
  for (const auto& c : expression->children()) {
    children.push_back(simplify_impl(c, child_context));
    changed = changed || children.back() != c;
  }

  switch (expression->kind()) {
    case Expr::Kind::kLogical:
      switch (expression->bool_op()) {
        case BoolOp::kAnd: {
          const ExprPtr& a = children[0];
          const ExprPtr& b = children[1];
          if (is_literal(a, false) || is_literal(b, false)) {
            return Expr::lit(Value(false));  // boolean-valued either way
          }
          if (boolean_context) {
            if (is_literal(a, true)) return b;
            if (is_literal(b, true)) return a;
          }
          return changed ? Expr::logical_and(a, b) : expression;
        }
        case BoolOp::kOr: {
          const ExprPtr& a = children[0];
          const ExprPtr& b = children[1];
          if (is_literal(a, true) || is_literal(b, true)) {
            return Expr::lit(Value(true));
          }
          if (boolean_context) {
            if (is_literal(a, false)) return b;
            if (is_literal(b, false)) return a;
          }
          return changed ? Expr::logical_or(a, b) : expression;
        }
        case BoolOp::kNot: {
          const ExprPtr& inner = children[0];
          if (inner->kind() == Expr::Kind::kLiteral &&
              inner->literal().type() == ValueType::kBool) {
            return Expr::lit(Value(!inner->literal().as_bool()));
          }
          if (inner->kind() == Expr::Kind::kLogical) {
            switch (inner->bool_op()) {
              case BoolOp::kNot:
                // NOT NOT x == x only through eval_bool coercion.
                if (boolean_context) {
                  return simplify_impl(inner->children()[0], true);
                }
                break;
              case BoolOp::kAnd:  // De Morgan: both sides boolean-valued.
                return simplify_impl(
                    Expr::logical_or(Expr::logical_not(inner->children()[0]),
                                     Expr::logical_not(inner->children()[1])),
                    boolean_context);
              case BoolOp::kOr:
                return simplify_impl(
                    Expr::logical_and(Expr::logical_not(inner->children()[0]),
                                      Expr::logical_not(inner->children()[1])),
                    boolean_context);
            }
          }
          return changed ? Expr::logical_not(inner) : expression;
        }
      }
      return expression;

    case Expr::Kind::kCompare:
      return changed ? Expr::cmp(expression->cmp_op(), children[0], children[1])
                     : expression;
    case Expr::Kind::kArith:
      return changed ? Expr::arith(expression->arith_op(), children[0], children[1])
                     : expression;
    case Expr::Kind::kIsNull: {
      // Non-nullable cases can't be decided statically (columns may hold
      // NULL); only rebuild when the child changed.
      return changed ? Expr::is_null(children[0], expression->negated()) : expression;
    }
    case Expr::Kind::kIn: {
      if (expression->values().empty()) {
        return Expr::lit(Value(expression->negated()));
      }
      return changed
                 ? Expr::in_list(children[0], expression->values(),
                                 expression->negated())
                 : expression;
    }
    case Expr::Kind::kBetween: {
      // BETWEEN lo AND hi with lo > hi can never hold.
      const Value& lo = expression->values()[0];
      const Value& hi = expression->values()[1];
      if (!lo.is_null() && !hi.is_null() &&
          lo.compare(hi) == std::strong_ordering::greater) {
        return Expr::lit(Value(false));
      }
      return changed ? Expr::between(children[0], lo, hi) : expression;
    }
    case Expr::Kind::kLike:
      return changed ? Expr::like_prefix(children[0], expression->prefix())
                     : expression;
    case Expr::Kind::kLiteral:
    case Expr::Kind::kColumn:
      return expression;  // handled above; keep the compiler satisfied
  }
  return expression;
}

}  // namespace

bool is_constant(const ExprPtr& expression) {
  return expression->columns().empty();
}

ExprPtr simplify(const ExprPtr& expression) {
  if (!expression) return expression;
  return simplify_impl(expression, /*boolean_context=*/true);
}

}  // namespace cq::alg
