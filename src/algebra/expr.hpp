// Scalar expression language: the predicates and projections of SPJ
// queries. Expressions are immutable trees shared by shared_ptr; rewriting
// (e.g. the DRA's substitution of A -> A_old / A_new over a differential
// relation, Section 4.2) produces new trees.
//
// Logic is two-valued with explicit IS NULL: any comparison or arithmetic
// touching a NULL evaluates to false / NULL respectively. This is
// deliberately simpler than SQL's three-valued logic and is applied
// consistently by both the DRA and the complete re-evaluation oracle.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "relation/schema.hpp"
#include "relation/tuple.hpp"

namespace cq::alg {

enum class CmpOp { kEq, kNe, kLt, kLe, kGt, kGe };
enum class ArithOp { kAdd, kSub, kMul, kDiv };
enum class BoolOp { kAnd, kOr, kNot };

[[nodiscard]] const char* to_string(CmpOp op) noexcept;
[[nodiscard]] const char* to_string(ArithOp op) noexcept;

class Expr;
using ExprPtr = std::shared_ptr<const Expr>;

/// One node of a scalar expression tree.
class Expr {
 public:
  enum class Kind {
    kLiteral,   // constant value
    kColumn,    // named column reference
    kCompare,   // child0 <op> child1
    kArith,     // child0 <op> child1
    kLogical,   // AND/OR (2 children) or NOT (1 child)
    kIsNull,    // child0 IS [NOT] NULL
    kIn,        // child0 [NOT] IN (literal list)
    kBetween,   // child0 BETWEEN lo AND hi (inclusive)
    kLike,      // child0 LIKE 'prefix%'  (prefix-match subset of LIKE)
  };

  // ---- factories ----
  [[nodiscard]] static ExprPtr lit(rel::Value v);
  [[nodiscard]] static ExprPtr col(std::string name);
  [[nodiscard]] static ExprPtr cmp(CmpOp op, ExprPtr lhs, ExprPtr rhs);
  [[nodiscard]] static ExprPtr arith(ArithOp op, ExprPtr lhs, ExprPtr rhs);
  [[nodiscard]] static ExprPtr logical_and(ExprPtr lhs, ExprPtr rhs);
  [[nodiscard]] static ExprPtr logical_or(ExprPtr lhs, ExprPtr rhs);
  [[nodiscard]] static ExprPtr logical_not(ExprPtr child);
  [[nodiscard]] static ExprPtr is_null(ExprPtr child, bool negated = false);
  [[nodiscard]] static ExprPtr in_list(ExprPtr child, std::vector<rel::Value> values,
                                       bool negated = false);
  [[nodiscard]] static ExprPtr between(ExprPtr child, rel::Value lo, rel::Value hi);
  [[nodiscard]] static ExprPtr like_prefix(ExprPtr child, std::string prefix);
  /// The always-true predicate (used when a selection has no condition).
  [[nodiscard]] static ExprPtr always_true();

  // Convenience comparison builders against a literal.
  [[nodiscard]] static ExprPtr col_cmp(std::string name, CmpOp op, rel::Value v) {
    return cmp(op, col(std::move(name)), lit(std::move(v)));
  }

  // ---- structure ----
  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] const rel::Value& literal() const noexcept { return literal_; }
  [[nodiscard]] const std::string& column() const noexcept { return column_; }
  [[nodiscard]] CmpOp cmp_op() const noexcept { return cmp_; }
  [[nodiscard]] ArithOp arith_op() const noexcept { return arith_; }
  [[nodiscard]] BoolOp bool_op() const noexcept { return logic_; }
  [[nodiscard]] bool negated() const noexcept { return negated_; }
  [[nodiscard]] const std::vector<ExprPtr>& children() const noexcept { return children_; }
  [[nodiscard]] const std::vector<rel::Value>& values() const noexcept { return values_; }
  [[nodiscard]] const std::string& prefix() const noexcept { return prefix_; }

  // ---- evaluation ----

  /// Deepest expression tree eval() will walk before raising InvalidArgument.
  /// Programmatically built trees can exceed the parser's nesting cap; the
  /// evaluator enforces its own ceiling so adversarial trees fail with a
  /// typed error instead of a stack overflow.
  static constexpr std::size_t kMaxEvalDepth = 512;

  /// Evaluate over one tuple described by `schema`. Throws NotFound when a
  /// referenced column is missing.
  [[nodiscard]] rel::Value eval(const rel::Tuple& tuple, const rel::Schema& schema) const;

  /// Evaluate as a predicate: non-BOOL or NULL results count as false.
  [[nodiscard]] bool eval_bool(const rel::Tuple& tuple, const rel::Schema& schema) const;

  // ---- analysis / rewriting ----

  /// Append all referenced column names (with duplicates) to `out`.
  void collect_columns(std::vector<std::string>& out) const;

  /// Column names referenced, deduplicated, in first-seen order.
  [[nodiscard]] std::vector<std::string> columns() const;

  /// True if every referenced column resolves in `schema`.
  [[nodiscard]] bool resolves_in(const rel::Schema& schema) const;

  /// New tree with every column name c replaced by rename(c).
  template <typename Fn>
  [[nodiscard]] ExprPtr rewrite_columns(Fn&& rename) const {
    return rewrite_impl([&rename](const std::string& c) { return rename(c); });
  }

  [[nodiscard]] std::string to_string() const;

 private:
  Expr() = default;
  [[nodiscard]] static std::shared_ptr<Expr> make_node();
  [[nodiscard]] rel::Value eval_at(const rel::Tuple& tuple, const rel::Schema& schema,
                                   std::size_t depth) const;
  [[nodiscard]] bool eval_bool_at(const rel::Tuple& tuple, const rel::Schema& schema,
                                  std::size_t depth) const;
  [[nodiscard]] ExprPtr rewrite_impl(
      const std::function<std::string(const std::string&)>& rename) const;

  Kind kind_ = Kind::kLiteral;
  rel::Value literal_;
  std::string column_;
  CmpOp cmp_ = CmpOp::kEq;
  ArithOp arith_ = ArithOp::kAdd;
  BoolOp logic_ = BoolOp::kAnd;
  bool negated_ = false;
  std::vector<ExprPtr> children_;
  std::vector<rel::Value> values_;  // IN list, or BETWEEN {lo, hi}
  std::string prefix_;              // LIKE prefix
};

/// AND-combine a list of predicates (nullptr/empty -> always_true()).
[[nodiscard]] ExprPtr conjoin(const std::vector<ExprPtr>& conjuncts);

}  // namespace cq::alg
