// Expression simplification (part of the Section 5.2 query-refinement
// toolbox): constant folding, boolean identity/short-circuit pruning,
// double-negation elimination, and De Morgan normalization so more
// conjuncts surface for the planner's pushdown pass.
//
// All rewrites preserve this library's two-valued logic exactly (see
// expr.hpp); in particular comparisons are NOT inverted under NOT, because
// with NULL operands `NOT (a < b)` and `a >= b` differ.
#pragma once

#include "algebra/expr.hpp"

namespace cq::alg {

/// Simplified equivalent of `expression` *as a predicate*: on every tuple
/// where the input evaluates without error, eval_bool() of the result
/// equals eval_bool() of the input. Two standard caveats: value-level
/// eval() may differ for non-boolean operands of boolean rewrites (e.g.
/// `NOT NOT price` simplifies to `price`), and — as in SQL optimizers —
/// short-circuit pruning (`X AND false` → `false`) may eliminate a branch
/// that would have raised a type error. Idempotent; itself never throws —
/// folding a division by zero yields the NULL literal, and constant
/// subtrees whose folding would raise a type error are left unfolded so
/// the error still surfaces at evaluation time.
[[nodiscard]] ExprPtr simplify(const ExprPtr& expression);

/// True when the expression references no columns (it folds to a literal).
[[nodiscard]] bool is_constant(const ExprPtr& expression);

}  // namespace cq::alg
