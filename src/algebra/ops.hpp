// Physical relational operators over in-memory relations. All operators are
// pure: they take snapshots and return a fresh Relation. They optionally
// record work done into a Metrics bag so benchmarks can report the paper's
// cost quantities (rows scanned, tuples compared).
#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "algebra/expr.hpp"
#include "common/metrics.hpp"
#include "relation/relation.hpp"

namespace cq::alg {

/// σ_pred(input). Output rows keep their tids.
[[nodiscard]] rel::Relation select(const rel::Relation& input, const Expr& predicate,
                                   common::Metrics* metrics = nullptr);

/// π_columns(input). With dedup=true the output is a set (SELECT DISTINCT);
/// otherwise multiset projection. Tids are preserved when dedup=false.
[[nodiscard]] rel::Relation project(const rel::Relation& input,
                                    const std::vector<std::string>& columns, bool dedup,
                                    common::Metrics* metrics = nullptr);

/// Nested-loop θ-join. predicate may be null (cross product). Output schema
/// is left.schema().concat(right.schema()); output rows are tid-less.
[[nodiscard]] rel::Relation nested_loop_join(const rel::Relation& left,
                                             const rel::Relation& right,
                                             const Expr* predicate,
                                             common::Metrics* metrics = nullptr);

/// Hash equi-join on the given column pairs, with an optional residual
/// predicate applied to the concatenated row. Builds the hash table on the
/// smaller input.
[[nodiscard]] rel::Relation hash_join(
    const rel::Relation& left, const rel::Relation& right,
    const std::vector<std::pair<std::size_t, std::size_t>>& equi_pairs,
    const Expr* residual, common::Metrics* metrics = nullptr);

/// General join entry point: analyzes the predicate and picks hash join when
/// at least one equi pair exists, nested-loop otherwise.
[[nodiscard]] rel::Relation join(const rel::Relation& left, const rel::Relation& right,
                                 const ExprPtr& predicate,
                                 common::Metrics* metrics = nullptr);

/// Multiset union (UNION ALL). Schemas must be union-compatible; the output
/// uses the left schema.
[[nodiscard]] rel::Relation union_all(const rel::Relation& a, const rel::Relation& b);

/// Multiset difference a − b: removes one occurrence per matching row in b.
/// This is the paper's Diff building block (Section 4.2).
[[nodiscard]] rel::Relation difference(const rel::Relation& a, const rel::Relation& b);

/// Multiset intersection.
[[nodiscard]] rel::Relation intersect(const rel::Relation& a, const rel::Relation& b);

/// Duplicate elimination by value.
[[nodiscard]] rel::Relation distinct(const rel::Relation& input);

}  // namespace cq::alg
