// Aggregation: scalar aggregates (the paper's checking-account SUM query,
// Sections 3.2 and 5.3) and grouped aggregates.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "common/metrics.hpp"
#include "relation/relation.hpp"

namespace cq::alg {

enum class AggKind { kCount, kSum, kAvg, kMin, kMax };

[[nodiscard]] const char* to_string(AggKind kind) noexcept;

/// One aggregate column specification: FUNC(column) AS alias.
/// For kCount the column may be empty (COUNT(*)).
struct AggSpec {
  AggKind kind = AggKind::kCount;
  std::string column;
  std::string alias;
};

/// Aggregate over the whole relation. NULL inputs are skipped (SQL-style);
/// SUM/MIN/MAX over an empty input yield NULL, COUNT yields 0.
[[nodiscard]] rel::Value scalar_aggregate(const rel::Relation& input, AggKind kind,
                                          const std::string& column,
                                          common::Metrics* metrics = nullptr);

/// The schema produced by group_aggregate (and maintained incrementally by
/// core::AggregateState): group columns followed by one column per spec.
[[nodiscard]] rel::Schema aggregate_output_schema(
    const rel::Schema& input, const std::vector<std::string>& group_columns,
    const std::vector<AggSpec>& specs);

/// GROUP BY `group_columns` computing each AggSpec. Output schema is the
/// group columns followed by one column per spec (named by alias).
[[nodiscard]] rel::Relation group_aggregate(const rel::Relation& input,
                                            const std::vector<std::string>& group_columns,
                                            const std::vector<AggSpec>& specs,
                                            common::Metrics* metrics = nullptr);

}  // namespace cq::alg
