// Predicate analysis used by the heuristic planner (Section 5.2: "Select
// before Join", cheap predicates first) and by the hash-join equi-key
// extraction inside DiffJoin.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "algebra/expr.hpp"
#include "relation/schema.hpp"

namespace cq::alg {

/// Flatten a predicate into its top-level AND-conjuncts.
[[nodiscard]] std::vector<ExprPtr> split_conjuncts(const ExprPtr& predicate);

/// True when the predicate is the constant TRUE literal.
[[nodiscard]] bool is_always_true(const ExprPtr& predicate);

/// Classification of a join predicate between two inputs.
struct JoinAnalysis {
  /// Equi-join column pairs: (left column index, right column index).
  std::vector<std::pair<std::size_t, std::size_t>> equi_pairs;
  /// Conjuncts referencing only the left input (push-down candidates).
  std::vector<ExprPtr> left_only;
  /// Conjuncts referencing only the right input.
  std::vector<ExprPtr> right_only;
  /// Everything else, to be applied on the concatenated row.
  std::vector<ExprPtr> residual;

  [[nodiscard]] ExprPtr residual_predicate() const { return conjoin(residual); }
};

/// Split `predicate` relative to a left/right schema pair.
[[nodiscard]] JoinAnalysis analyze_join(const ExprPtr& predicate,
                                        const rel::Schema& left,
                                        const rel::Schema& right);

/// Rough cost rank of a conjunct for the "cheaper selection predicates
/// before expensive ones" heuristic (Section 5.2). Lower runs earlier.
[[nodiscard]] int predicate_cost_rank(const ExprPtr& conjunct);

/// Crude selectivity estimate in (0, 1]; used only for join ordering.
[[nodiscard]] double estimate_selectivity(const ExprPtr& predicate);

}  // namespace cq::alg
