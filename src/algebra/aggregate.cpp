#include "algebra/aggregate.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"
#include "common/observability.hpp"

namespace cq::alg {

using rel::Relation;
using rel::Tuple;
using rel::Value;
using rel::ValueType;

const char* to_string(AggKind kind) noexcept {
  switch (kind) {
    case AggKind::kCount: return "COUNT";
    case AggKind::kSum: return "SUM";
    case AggKind::kAvg: return "AVG";
    case AggKind::kMin: return "MIN";
    case AggKind::kMax: return "MAX";
  }
  return "?";
}

namespace {

/// Streaming accumulator for one aggregate.
class Accumulator {
 public:
  explicit Accumulator(AggKind kind) : kind_(kind) {}

  void add(const Value& v) {
    if (kind_ == AggKind::kCount) {
      if (!v.is_null()) ++count_;  // COUNT(col) skips NULLs; COUNT(*) feeds TRUE
      return;
    }
    if (v.is_null()) return;
    ++count_;
    switch (kind_) {
      case AggKind::kSum:
      case AggKind::kAvg:
        if (v.type() == ValueType::kInt && !is_double_) {
          int_sum_ += v.as_int();
        } else {
          if (!is_double_) {
            dbl_sum_ = static_cast<double>(int_sum_);
            is_double_ = true;
          }
          dbl_sum_ += v.numeric();
        }
        break;
      case AggKind::kMin:
        if (!best_ || v < *best_) best_ = v;
        break;
      case AggKind::kMax:
        if (!best_ || *best_ < v) best_ = v;
        break;
      case AggKind::kCount:
        break;
    }
  }

  [[nodiscard]] Value result() const {
    switch (kind_) {
      case AggKind::kCount:
        return Value(static_cast<std::int64_t>(count_));
      case AggKind::kSum:
        if (count_ == 0) return Value::null();
        return is_double_ ? Value(dbl_sum_) : Value(int_sum_);
      case AggKind::kAvg:
        if (count_ == 0) return Value::null();
        return Value((is_double_ ? dbl_sum_ : static_cast<double>(int_sum_)) /
                     static_cast<double>(count_));
      case AggKind::kMin:
      case AggKind::kMax:
        return best_ ? *best_ : Value::null();
    }
    return Value::null();
  }

 private:
  AggKind kind_;
  std::int64_t count_ = 0;
  std::int64_t int_sum_ = 0;
  double dbl_sum_ = 0.0;
  bool is_double_ = false;
  std::optional<Value> best_;
};

ValueType result_type(AggKind kind, ValueType input) {
  switch (kind) {
    case AggKind::kCount: return ValueType::kInt;
    case AggKind::kAvg: return ValueType::kDouble;
    case AggKind::kSum: return input == ValueType::kDouble ? ValueType::kDouble
                                                           : ValueType::kInt;
    case AggKind::kMin:
    case AggKind::kMax: return input;
  }
  return ValueType::kNull;
}

}  // namespace

rel::Schema aggregate_output_schema(const rel::Schema& input,
                                    const std::vector<std::string>& group_columns,
                                    const std::vector<AggSpec>& specs) {
  std::vector<rel::Attribute> out;
  for (const auto& g : group_columns) out.push_back(input.at(input.index_of(g)));
  for (const auto& s : specs) {
    ValueType in_type = ValueType::kInt;
    if (!s.column.empty() && s.column != "*") {
      in_type = input.at(input.index_of(s.column)).type;
    } else if (s.kind != AggKind::kCount) {
      throw common::InvalidArgument("aggregate_output_schema: " +
                                    std::string(to_string(s.kind)) + " requires a column");
    }
    out.push_back(
        {s.alias.empty() ? std::string(to_string(s.kind)) + "(" + s.column + ")"
                         : s.alias,
         result_type(s.kind, in_type)});
  }
  return rel::Schema(std::move(out));
}

Value scalar_aggregate(const Relation& input, AggKind kind, const std::string& column,
                       common::Metrics* metrics) {
  std::optional<std::size_t> col;
  if (!column.empty() && column != "*") col = input.schema().index_of(column);
  if (!col && kind != AggKind::kCount) {
    throw common::InvalidArgument("scalar_aggregate: " + std::string(to_string(kind)) +
                                  " requires a column");
  }
  Accumulator acc(kind);
  for (const auto& row : input.rows()) {
    acc.add(col ? row.at(*col) : Value(true));
  }
  if (metrics != nullptr) {
    metrics->add(common::metric::kRowsScanned, static_cast<std::int64_t>(input.size()));
  }
  return acc.result();
}

Relation group_aggregate(const Relation& input,
                         const std::vector<std::string>& group_columns,
                         const std::vector<AggSpec>& specs, common::Metrics* metrics) {
  common::obs::Span span("alg.group_aggregate");
  std::vector<std::size_t> group_idx;
  group_idx.reserve(group_columns.size());
  for (const auto& c : group_columns) group_idx.push_back(input.schema().index_of(c));

  std::vector<std::optional<std::size_t>> spec_idx;
  for (const auto& s : specs) {
    std::optional<std::size_t> idx;
    if (!s.column.empty() && s.column != "*") {
      idx = input.schema().index_of(s.column);
    } else if (s.kind != AggKind::kCount) {
      throw common::InvalidArgument("group_aggregate: " +
                                    std::string(to_string(s.kind)) + " requires a column");
    }
    spec_idx.push_back(idx);
  }
  rel::Schema out_schema = aggregate_output_schema(input.schema(), group_columns, specs);

  // Deterministic output order: map keyed by group values (Value ordering).
  struct KeyLess {
    bool operator()(const std::vector<Value>& a, const std::vector<Value>& b) const {
      for (std::size_t i = 0; i < std::min(a.size(), b.size()); ++i) {
        auto c = a[i].compare(b[i]);
        if (c != std::strong_ordering::equal) return c == std::strong_ordering::less;
      }
      return a.size() < b.size();
    }
  };
  std::map<std::vector<Value>, std::vector<Accumulator>, KeyLess> groups;

  for (const auto& row : input.rows()) {
    std::vector<Value> key;
    key.reserve(group_idx.size());
    for (auto gi : group_idx) key.push_back(row.at(gi));
    auto it = groups.find(key);
    if (it == groups.end()) {
      std::vector<Accumulator> accs;
      accs.reserve(specs.size());
      for (const auto& s : specs) accs.emplace_back(s.kind);
      it = groups.emplace(std::move(key), std::move(accs)).first;
    }
    for (std::size_t i = 0; i < specs.size(); ++i) {
      it->second[i].add(spec_idx[i] ? row.at(*spec_idx[i]) : Value(true));
    }
  }

  Relation out{std::move(out_schema)};
  for (const auto& [key, accs] : groups) {
    std::vector<Value> values = key;
    for (const auto& acc : accs) values.push_back(acc.result());
    out.append(Tuple(std::move(values)));
  }
  if (metrics != nullptr) {
    metrics->add(common::metric::kRowsScanned, static_cast<std::int64_t>(input.size()));
  }
  return out;
}

}  // namespace cq::alg
