#include "algebra/predicate.hpp"

#include <algorithm>

namespace cq::alg {

namespace {
void collect_conjuncts(const ExprPtr& e, std::vector<ExprPtr>& out) {
  if (e->kind() == Expr::Kind::kLogical && e->bool_op() == BoolOp::kAnd) {
    collect_conjuncts(e->children()[0], out);
    collect_conjuncts(e->children()[1], out);
    return;
  }
  out.push_back(e);
}
}  // namespace

std::vector<ExprPtr> split_conjuncts(const ExprPtr& predicate) {
  std::vector<ExprPtr> out;
  if (predicate && !is_always_true(predicate)) collect_conjuncts(predicate, out);
  return out;
}

bool is_always_true(const ExprPtr& predicate) {
  return !predicate ||
         (predicate->kind() == Expr::Kind::kLiteral &&
          predicate->literal().type() == rel::ValueType::kBool &&
          predicate->literal().as_bool());
}

JoinAnalysis analyze_join(const ExprPtr& predicate, const rel::Schema& left,
                          const rel::Schema& right) {
  JoinAnalysis out;
  for (const auto& conjunct : split_conjuncts(predicate)) {
    // col = col straddling the two inputs?
    if (conjunct->kind() == Expr::Kind::kCompare && conjunct->cmp_op() == CmpOp::kEq) {
      const auto& a = conjunct->children()[0];
      const auto& b = conjunct->children()[1];
      if (a->kind() == Expr::Kind::kColumn && b->kind() == Expr::Kind::kColumn) {
        const auto al = left.find(a->column());
        const auto ar = right.find(a->column());
        const auto bl = left.find(b->column());
        const auto br = right.find(b->column());
        if (al && br && !ar && !bl) {
          out.equi_pairs.emplace_back(*al, *br);
          continue;
        }
        if (bl && ar && !br && !al) {
          out.equi_pairs.emplace_back(*bl, *ar);
          continue;
        }
      }
    }
    const bool in_left = conjunct->resolves_in(left);
    const bool in_right = conjunct->resolves_in(right);
    if (in_left && !in_right) {
      out.left_only.push_back(conjunct);
    } else if (in_right && !in_left) {
      out.right_only.push_back(conjunct);
    } else {
      out.residual.push_back(conjunct);
    }
  }
  return out;
}

int predicate_cost_rank(const ExprPtr& conjunct) {
  switch (conjunct->kind()) {
    case Expr::Kind::kIsNull: return 0;
    case Expr::Kind::kCompare: {
      // Column-vs-literal comparisons are cheapest; expressions cost more.
      const auto& kids = conjunct->children();
      const bool simple = kids[0]->kind() == Expr::Kind::kColumn &&
                          kids[1]->kind() == Expr::Kind::kLiteral;
      return simple ? 1 : 3;
    }
    case Expr::Kind::kBetween: return 1;
    case Expr::Kind::kIn: return 2;
    case Expr::Kind::kLike: return 2;
    case Expr::Kind::kArith: return 3;
    case Expr::Kind::kLogical: return 4;
    // Literal/column conjuncts (e.g. a bare TRUE) are degenerate; rank
    // them mid-range so they neither jump the queue nor sink.
    case Expr::Kind::kLiteral: return 2;
    case Expr::Kind::kColumn: return 2;
  }
  return 2;
}

double estimate_selectivity(const ExprPtr& predicate) {
  if (is_always_true(predicate)) return 1.0;
  switch (predicate->kind()) {
    case Expr::Kind::kCompare:
      switch (predicate->cmp_op()) {
        case CmpOp::kEq: return 0.1;
        case CmpOp::kNe: return 0.9;
        case CmpOp::kLt:
        case CmpOp::kLe:
        case CmpOp::kGt:
        case CmpOp::kGe: return 0.33;
      }
      return 0.33;
    case Expr::Kind::kBetween: return 0.25;
    case Expr::Kind::kIn:
      return std::min(1.0, 0.1 * static_cast<double>(predicate->values().size()));
    case Expr::Kind::kLike: return 0.2;
    case Expr::Kind::kIsNull: return 0.05;
    case Expr::Kind::kLogical:
      switch (predicate->bool_op()) {
        case BoolOp::kAnd:
          return estimate_selectivity(predicate->children()[0]) *
                 estimate_selectivity(predicate->children()[1]);
        case BoolOp::kOr: {
          const double a = estimate_selectivity(predicate->children()[0]);
          const double b = estimate_selectivity(predicate->children()[1]);
          return a + b - a * b;
        }
        case BoolOp::kNot:
          return 1.0 - estimate_selectivity(predicate->children()[0]);
      }
      return 0.5;
    // No statistics to say otherwise: arithmetic-rooted predicates and
    // degenerate literal/column roots get the even-odds prior.
    case Expr::Kind::kArith:
    case Expr::Kind::kLiteral:
    case Expr::Kind::kColumn:
      return 0.5;
  }
  return 0.5;
}

}  // namespace cq::alg
