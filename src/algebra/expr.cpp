#include "algebra/expr.hpp"

#include <limits>
#include <sstream>

#include "common/error.hpp"

namespace cq::alg {

using rel::Value;
using rel::ValueType;

const char* to_string(CmpOp op) noexcept {
  switch (op) {
    case CmpOp::kEq: return "=";
    case CmpOp::kNe: return "<>";
    case CmpOp::kLt: return "<";
    case CmpOp::kLe: return "<=";
    case CmpOp::kGt: return ">";
    case CmpOp::kGe: return ">=";
  }
  return "?";
}

const char* to_string(ArithOp op) noexcept {
  switch (op) {
    case ArithOp::kAdd: return "+";
    case ArithOp::kSub: return "-";
    case ArithOp::kMul: return "*";
    case ArithOp::kDiv: return "/";
  }
  return "?";
}

std::shared_ptr<Expr> Expr::make_node() { return std::shared_ptr<Expr>(new Expr()); }

ExprPtr Expr::lit(Value v) {
  auto e = make_node();
  e->kind_ = Kind::kLiteral;
  e->literal_ = std::move(v);
  return e;
}

ExprPtr Expr::col(std::string name) {
  auto e = make_node();
  if (name.empty()) throw common::InvalidArgument("Expr::col: empty column name");
  e->kind_ = Kind::kColumn;
  e->column_ = std::move(name);
  return e;
}

ExprPtr Expr::cmp(CmpOp op, ExprPtr lhs, ExprPtr rhs) {
  if (!lhs || !rhs) throw common::InvalidArgument("Expr::cmp: null child");
  auto e = make_node();
  e->kind_ = Kind::kCompare;
  e->cmp_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::arith(ArithOp op, ExprPtr lhs, ExprPtr rhs) {
  if (!lhs || !rhs) throw common::InvalidArgument("Expr::arith: null child");
  auto e = make_node();
  e->kind_ = Kind::kArith;
  e->arith_ = op;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::logical_and(ExprPtr lhs, ExprPtr rhs) {
  if (!lhs || !rhs) throw common::InvalidArgument("Expr::logical_and: null child");
  auto e = make_node();
  e->kind_ = Kind::kLogical;
  e->logic_ = BoolOp::kAnd;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::logical_or(ExprPtr lhs, ExprPtr rhs) {
  if (!lhs || !rhs) throw common::InvalidArgument("Expr::logical_or: null child");
  auto e = make_node();
  e->kind_ = Kind::kLogical;
  e->logic_ = BoolOp::kOr;
  e->children_ = {std::move(lhs), std::move(rhs)};
  return e;
}

ExprPtr Expr::logical_not(ExprPtr child) {
  if (!child) throw common::InvalidArgument("Expr::logical_not: null child");
  auto e = make_node();
  e->kind_ = Kind::kLogical;
  e->logic_ = BoolOp::kNot;
  e->children_ = {std::move(child)};
  return e;
}

ExprPtr Expr::is_null(ExprPtr child, bool negated) {
  if (!child) throw common::InvalidArgument("Expr::is_null: null child");
  auto e = make_node();
  e->kind_ = Kind::kIsNull;
  e->negated_ = negated;
  e->children_ = {std::move(child)};
  return e;
}

ExprPtr Expr::in_list(ExprPtr child, std::vector<Value> values, bool negated) {
  if (!child) throw common::InvalidArgument("Expr::in_list: null child");
  auto e = make_node();
  e->kind_ = Kind::kIn;
  e->negated_ = negated;
  e->children_ = {std::move(child)};
  e->values_ = std::move(values);
  return e;
}

ExprPtr Expr::between(ExprPtr child, Value lo, Value hi) {
  if (!child) throw common::InvalidArgument("Expr::between: null child");
  auto e = make_node();
  e->kind_ = Kind::kBetween;
  e->children_ = {std::move(child)};
  e->values_ = {std::move(lo), std::move(hi)};
  return e;
}

ExprPtr Expr::like_prefix(ExprPtr child, std::string prefix) {
  if (!child) throw common::InvalidArgument("Expr::like_prefix: null child");
  auto e = make_node();
  e->kind_ = Kind::kLike;
  e->children_ = {std::move(child)};
  e->prefix_ = std::move(prefix);
  return e;
}

ExprPtr Expr::always_true() { return lit(Value(true)); }

namespace {
bool compare_values(CmpOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return false;  // two-valued logic
  const auto c = a.compare(b);
  switch (op) {
    case CmpOp::kEq: return c == std::strong_ordering::equal;
    case CmpOp::kNe: return c != std::strong_ordering::equal;
    case CmpOp::kLt: return c == std::strong_ordering::less;
    case CmpOp::kLe: return c != std::strong_ordering::greater;
    case CmpOp::kGt: return c == std::strong_ordering::greater;
    case CmpOp::kGe: return c != std::strong_ordering::less;
  }
  return false;
}

Value arith_values(ArithOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::null();
  if (a.type() == ValueType::kInt && b.type() == ValueType::kInt) {
    const auto x = a.as_int();
    const auto y = b.as_int();
    // INT64 overflow yields NULL, the same undefined-arithmetic result as
    // x/0. A thrown error here would break DRA ≡ recompute equivalence:
    // the full re-evaluation oracle touches every base row while the DRA
    // only touches deltas, so an overflowing row outside the delta zone
    // would crash one side and not the other. NULL keeps evaluation a
    // total, per-tuple-deterministic function (and UBSan-clean).
    std::int64_t r = 0;
    switch (op) {
      case ArithOp::kAdd:
        if (__builtin_add_overflow(x, y, &r)) return Value::null();
        return Value(r);
      case ArithOp::kSub:
        if (__builtin_sub_overflow(x, y, &r)) return Value::null();
        return Value(r);
      case ArithOp::kMul:
        if (__builtin_mul_overflow(x, y, &r)) return Value::null();
        return Value(r);
      case ArithOp::kDiv:
        if (y == 0) return Value::null();
        if (x == std::numeric_limits<std::int64_t>::min() && y == -1) {
          return Value::null();  // the one overflowing division
        }
        return Value(x / y);
    }
  }
  const double x = a.numeric();
  const double y = b.numeric();
  switch (op) {
    case ArithOp::kAdd: return Value(x + y);
    case ArithOp::kSub: return Value(x - y);
    case ArithOp::kMul: return Value(x * y);
    case ArithOp::kDiv:
      if (y == 0.0) return Value::null();
      return Value(x / y);
  }
  return Value::null();
}
}  // namespace

Value Expr::eval(const rel::Tuple& tuple, const rel::Schema& schema) const {
  return eval_at(tuple, schema, 0);
}

Value Expr::eval_at(const rel::Tuple& tuple, const rel::Schema& schema,
                    std::size_t depth) const {
  if (depth >= kMaxEvalDepth) {
    throw common::InvalidArgument("Expr::eval: expression nesting too deep");
  }
  switch (kind_) {
    case Kind::kLiteral:
      return literal_;
    case Kind::kColumn:
      return tuple.at(schema.index_of(column_));
    case Kind::kCompare:
      return Value(compare_values(cmp_, children_[0]->eval_at(tuple, schema, depth + 1),
                                  children_[1]->eval_at(tuple, schema, depth + 1)));
    case Kind::kArith:
      return arith_values(arith_, children_[0]->eval_at(tuple, schema, depth + 1),
                          children_[1]->eval_at(tuple, schema, depth + 1));
    case Kind::kLogical:
      switch (logic_) {
        case BoolOp::kAnd:
          return Value(children_[0]->eval_bool_at(tuple, schema, depth + 1) &&
                       children_[1]->eval_bool_at(tuple, schema, depth + 1));
        case BoolOp::kOr:
          return Value(children_[0]->eval_bool_at(tuple, schema, depth + 1) ||
                       children_[1]->eval_bool_at(tuple, schema, depth + 1));
        case BoolOp::kNot:
          return Value(!children_[0]->eval_bool_at(tuple, schema, depth + 1));
      }
      return Value(false);
    case Kind::kIsNull: {
      const bool null = children_[0]->eval_at(tuple, schema, depth + 1).is_null();
      return Value(negated_ ? !null : null);
    }
    case Kind::kIn: {
      const Value v = children_[0]->eval_at(tuple, schema, depth + 1);
      if (v.is_null()) return Value(false);
      bool found = false;
      for (const auto& candidate : values_) {
        if (v == candidate) {
          found = true;
          break;
        }
      }
      return Value(negated_ ? !found : found);
    }
    case Kind::kBetween: {
      const Value v = children_[0]->eval_at(tuple, schema, depth + 1);
      return Value(compare_values(CmpOp::kGe, v, values_[0]) &&
                   compare_values(CmpOp::kLe, v, values_[1]));
    }
    case Kind::kLike: {
      const Value v = children_[0]->eval_at(tuple, schema, depth + 1);
      if (v.type() != ValueType::kString) return Value(false);
      const auto& s = v.as_string();
      return Value(s.size() >= prefix_.size() &&
                   s.compare(0, prefix_.size(), prefix_) == 0);
    }
  }
  return Value::null();
}

bool Expr::eval_bool(const rel::Tuple& tuple, const rel::Schema& schema) const {
  return eval_bool_at(tuple, schema, 0);
}

bool Expr::eval_bool_at(const rel::Tuple& tuple, const rel::Schema& schema,
                        std::size_t depth) const {
  const Value v = eval_at(tuple, schema, depth);
  return v.type() == ValueType::kBool && v.as_bool();
}

void Expr::collect_columns(std::vector<std::string>& out) const {
  if (kind_ == Kind::kColumn) out.push_back(column_);
  for (const auto& c : children_) c->collect_columns(out);
}

std::vector<std::string> Expr::columns() const {
  std::vector<std::string> all;
  collect_columns(all);
  std::vector<std::string> unique;
  for (auto& name : all) {
    bool seen = false;
    for (const auto& u : unique) {
      if (u == name) {
        seen = true;
        break;
      }
    }
    if (!seen) unique.push_back(std::move(name));
  }
  return unique;
}

bool Expr::resolves_in(const rel::Schema& schema) const {
  for (const auto& c : columns()) {
    if (!schema.contains(c)) return false;
  }
  return true;
}

ExprPtr Expr::rewrite_impl(
    const std::function<std::string(const std::string&)>& rename) const {
  auto e = make_node();
  e->kind_ = kind_;
  e->literal_ = literal_;
  e->column_ = kind_ == Kind::kColumn ? rename(column_) : column_;
  e->cmp_ = cmp_;
  e->arith_ = arith_;
  e->logic_ = logic_;
  e->negated_ = negated_;
  e->values_ = values_;
  e->prefix_ = prefix_;
  e->children_.reserve(children_.size());
  for (const auto& c : children_) e->children_.push_back(c->rewrite_impl(rename));
  return e;
}

std::string Expr::to_string() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kLiteral:
      os << literal_.to_string();
      break;
    case Kind::kColumn:
      os << column_;
      break;
    case Kind::kCompare:
      os << "(" << children_[0]->to_string() << " " << alg::to_string(cmp_) << " "
         << children_[1]->to_string() << ")";
      break;
    case Kind::kArith:
      os << "(" << children_[0]->to_string() << " " << alg::to_string(arith_) << " "
         << children_[1]->to_string() << ")";
      break;
    case Kind::kLogical:
      if (logic_ == BoolOp::kNot) {
        os << "NOT " << children_[0]->to_string();
      } else {
        os << "(" << children_[0]->to_string()
           << (logic_ == BoolOp::kAnd ? " AND " : " OR ") << children_[1]->to_string()
           << ")";
      }
      break;
    case Kind::kIsNull:
      os << children_[0]->to_string() << (negated_ ? " IS NOT NULL" : " IS NULL");
      break;
    case Kind::kIn: {
      os << children_[0]->to_string() << (negated_ ? " NOT IN (" : " IN (");
      for (std::size_t i = 0; i < values_.size(); ++i) {
        if (i > 0) os << ", ";
        os << values_[i].to_string();
      }
      os << ")";
      break;
    }
    case Kind::kBetween:
      os << children_[0]->to_string() << " BETWEEN " << values_[0].to_string() << " AND "
         << values_[1].to_string();
      break;
    case Kind::kLike: {
      os << children_[0]->to_string() << " LIKE ";
      // Render through Value quoting so embedded quotes re-parse (the parser
      // re-validates the prefix-only shape on the way back in).
      std::string pattern = Value(prefix_ + "%").to_string();
      os << pattern;
      break;
    }
  }
  return os.str();
}

ExprPtr conjoin(const std::vector<ExprPtr>& conjuncts) {
  ExprPtr acc;
  for (const auto& c : conjuncts) {
    if (!c) continue;
    acc = acc ? Expr::logical_and(acc, c) : c;
  }
  return acc ? acc : Expr::always_true();
}

}  // namespace cq::alg
