#include "delta/delta_zone.hpp"

#include <sstream>

#include "common/error.hpp"

namespace cq::delta {

using common::Timestamp;

CqId DeltaZoneRegistry::register_cq(Timestamp t) {
  const CqId id = next_id_++;
  zones_.emplace(id, t);
  return id;
}

void DeltaZoneRegistry::advance(CqId id, Timestamp t) {
  auto it = zones_.find(id);
  if (it == zones_.end()) {
    throw common::NotFound("DeltaZoneRegistry: unknown CQ id " + std::to_string(id));
  }
  if (t < it->second) {
    throw common::InvalidArgument("DeltaZoneRegistry: zone for CQ " + std::to_string(id) +
                                  " may not move backwards");
  }
  it->second = t;
}

void DeltaZoneRegistry::unregister(CqId id) {
  if (zones_.erase(id) == 0) {
    throw common::NotFound("DeltaZoneRegistry: unknown CQ id " + std::to_string(id));
  }
}

Timestamp DeltaZoneRegistry::zone_start(CqId id) const {
  auto it = zones_.find(id);
  if (it == zones_.end()) {
    throw common::NotFound("DeltaZoneRegistry: unknown CQ id " + std::to_string(id));
  }
  return it->second;
}

std::optional<Timestamp> DeltaZoneRegistry::system_zone_start() const noexcept {
  std::optional<Timestamp> start;
  for (const auto& [id, t] : zones_) {
    if (!start || t < *start) start = t;
  }
  return start;
}

std::string DeltaZoneRegistry::to_string() const {
  std::ostringstream os;
  os << "DeltaZoneRegistry{" << zones_.size() << " CQs";
  if (auto s = system_zone_start()) os << ", system zone starts at " << s->to_string();
  os << "}";
  return os.str();
}

}  // namespace cq::delta
