#include "delta/delta_zone.hpp"

#include <sstream>

#include "common/error.hpp"

namespace cq::delta {

using common::Timestamp;

DeltaZoneRegistry::DeltaZoneRegistry(DeltaZoneRegistry&& other) noexcept {
  // The quiescence contract makes the lock formally redundant, but it is
  // free here and keeps the thread-safety analysis honest. Our own mu_ is
  // not locked: no other thread can see *this mid-construction, and a
  // second same-rank "delta_zones" acquisition would (rightly) trip the
  // runtime lock-order checker.
  common::LockGuard theirs(other.mu_);
  zones_ = std::move(other.zones_);
  next_id_ = other.next_id_;
  other.zones_.clear();
  other.next_id_ = 1;
}

CqId DeltaZoneRegistry::register_cq(Timestamp t) {
  common::LockGuard lock(mu_);
  const CqId id = next_id_++;
  zones_.emplace(id, t);
  return id;
}

void DeltaZoneRegistry::advance(CqId id, Timestamp t) {
  common::LockGuard lock(mu_);
  auto it = zones_.find(id);
  if (it == zones_.end()) {
    throw common::NotFound("DeltaZoneRegistry: unknown CQ id " + std::to_string(id));
  }
  if (t < it->second) {
    throw common::InvalidArgument("DeltaZoneRegistry: zone for CQ " + std::to_string(id) +
                                  " may not move backwards");
  }
  it->second = t;
}

void DeltaZoneRegistry::unregister(CqId id) {
  common::LockGuard lock(mu_);
  if (zones_.erase(id) == 0) {
    throw common::NotFound("DeltaZoneRegistry: unknown CQ id " + std::to_string(id));
  }
}

Timestamp DeltaZoneRegistry::zone_start(CqId id) const {
  common::LockGuard lock(mu_);
  auto it = zones_.find(id);
  if (it == zones_.end()) {
    throw common::NotFound("DeltaZoneRegistry: unknown CQ id " + std::to_string(id));
  }
  return it->second;
}

std::optional<Timestamp> DeltaZoneRegistry::system_zone_start() const noexcept {
  common::LockGuard lock(mu_);
  std::optional<Timestamp> start;
  for (const auto& [id, t] : zones_) {
    if (!start || t < *start) start = t;
  }
  return start;
}

std::string DeltaZoneRegistry::to_string() const {
  std::ostringstream os;
  common::LockGuard lock(mu_);
  os << "DeltaZoneRegistry{" << zones_.size() << " CQs";
  std::optional<Timestamp> start;
  for (const auto& [id, t] : zones_) {
    if (!start || t < *start) start = t;
  }
  if (start) os << ", system zone starts at " << start->to_string();
  os << "}";
  return os.str();
}

}  // namespace cq::delta
