// Active delta zones (Section 5.4): the bookkeeping that decides how much
// of each differential relation is still needed.
//
// Each continual query, after executing at time t, only ever reads delta
// rows with ts > t. Its "active delta zone" therefore starts at its last
// execution timestamp; the system active delta zone starts at the minimum
// over all registered CQs, and everything older can be reclaimed.
//
// The registry is internally synchronized ("delta_zones" in the lock
// hierarchy): zone advances happen on whichever thread dispatches a
// commit, while GC reads the system zone start from the engine thread.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/sync.hpp"
#include "common/timestamp.hpp"

namespace cq::delta {

/// Identifier of a registered continual query within one registry.
using CqId = std::uint64_t;

class DeltaZoneRegistry {
 public:
  DeltaZoneRegistry() = default;

  /// Move support for snapshot restore (a Database is built and then moved
  /// into its Mediator). The source must be quiescent — no thread may be
  /// registering or advancing zones while it is moved from.
  DeltaZoneRegistry(DeltaZoneRegistry&& other) noexcept;
  DeltaZoneRegistry& operator=(DeltaZoneRegistry&&) = delete;
  DeltaZoneRegistry(const DeltaZoneRegistry&) = delete;
  DeltaZoneRegistry& operator=(const DeltaZoneRegistry&) = delete;

  /// Register a CQ whose last execution (or installation) happened at `t`.
  /// Returns a fresh id.
  CqId register_cq(common::Timestamp t);

  /// Record that the CQ executed at `t`; its zone start moves forward.
  /// Moving a zone backwards is a bug and throws InvalidArgument.
  void advance(CqId id, common::Timestamp t);

  /// Remove a finished CQ (its Stop condition fired).
  void unregister(CqId id);

  [[nodiscard]] std::size_t active_count() const noexcept {
    common::LockGuard lock(mu_);
    return zones_.size();
  }

  /// Zone start of one CQ.
  [[nodiscard]] common::Timestamp zone_start(CqId id) const;

  /// Start of the system active delta zone: min over registered CQs, or
  /// nullopt when no CQ is registered (then everything is collectable).
  [[nodiscard]] std::optional<common::Timestamp> system_zone_start() const noexcept;

  [[nodiscard]] std::string to_string() const;

 private:
  mutable common::Mutex mu_{"delta_zones", common::lockorder::LockRank::kDeltaZones};
  std::unordered_map<CqId, common::Timestamp> zones_ CQ_GUARDED_BY(mu_);
  CqId next_id_ CQ_GUARDED_BY(mu_) = 1;
};

}  // namespace cq::delta
