// A shared, read-only view of one DeltaRelation taken at dispatch time
// (the parallel evaluation engine's unit of sharing). When a commit makes
// N continual queries eligible, the manager snapshots each touched
// relation's delta once and every CQ evaluates against the snapshot —
// instead of N independent rescans of the live log — while a ReadPin
// keeps garbage collection from reclaiming the rows being read.
//
// The snapshot does not copy the log: commits are serialized with
// dispatch by the engine, so the underlying rows are immutable for the
// snapshot's lifetime, and the pin blocks the only other mutator (GC
// truncation). Derived views (net effect / insertions / deletions) are
// memoized per `since` so CQs sharing a last-execution timestamp share
// one materialization.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/sync.hpp"
#include "common/timestamp.hpp"
#include "delta/delta_relation.hpp"
#include "relation/relation.hpp"

namespace cq::delta {

class DeltaSnapshot {
 public:
  /// Pins `source` against GC for the snapshot's lifetime. The snapshot
  /// must not outlive the DeltaRelation (the manager drops snapshots at
  /// the end of each dispatch, before control returns to the database).
  explicit DeltaSnapshot(const DeltaRelation& source);

  DeltaSnapshot(const DeltaSnapshot&) = delete;
  DeltaSnapshot& operator=(const DeltaSnapshot&) = delete;

  [[nodiscard]] const rel::Schema& base_schema() const noexcept {
    return source_.base_schema();
  }

  /// True when at least one change is strictly after `since`.
  [[nodiscard]] bool changed_since(common::Timestamp since) const noexcept {
    return source_.changed_since(since);
  }

  /// Net effect per tid of changes after `since` — same collapse rules
  /// (and byte-identical output) as DeltaRelation::net_effect.
  [[nodiscard]] const std::vector<DeltaRow>& net_effect(common::Timestamp since) const;

  /// insertions(ΔR) / deletions(ΔR) over the base schema, ts > since.
  [[nodiscard]] const rel::Relation& insertions(common::Timestamp since) const;
  [[nodiscard]] const rel::Relation& deletions(common::Timestamp since) const;

 private:
  struct Views {
    std::vector<DeltaRow> net;
    rel::Relation ins;
    rel::Relation del;
  };

  /// Memoized materialization of all three views for one `since`.
  /// std::map node stability makes the returned reference durable.
  const Views& views(common::Timestamp since) const;

  const DeltaRelation& source_;
  DeltaRelation::ReadPin pin_;
  mutable common::Mutex mu_{"delta_snapshot",
                             common::lockorder::LockRank::kDeltaSnapshot};
  mutable std::map<common::Timestamp, Views> cache_ CQ_GUARDED_BY(mu_);
};

/// Per-dispatch snapshot set, keyed by relation name. Built once by the
/// CQ manager and handed (read-only) to every concurrently evaluating CQ.
using SnapshotMap = std::map<std::string, std::shared_ptr<const DeltaSnapshot>>;

}  // namespace cq::delta
