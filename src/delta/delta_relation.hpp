// Differential relations (Section 4.1): the log of changes to one base
// relation, represented exactly as the paper describes —
//
//   | A1_old ... An_old | A1_new ... An_new | tid | ts |
//
// where insertions leave the old half null, deletions leave the new half
// null, and modifications carry both. A delta relation spans many
// transactions; rows older than every active CQ's last execution are
// reclaimed by garbage collection (Section 5.4, delta_zone.hpp).
//
// Two derived views drive all differential evaluation:
//   insertions(since): tuples added to R after `since` (inserts + the new
//                      versions of modifications);
//   deletions(since):  tuples removed from R after `since` (deletes + the
//                      old versions of modifications).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/sync.hpp"
#include "common/timestamp.hpp"
#include "relation/provenance.hpp"
#include "relation/relation.hpp"
#include "relation/schema.hpp"

namespace cq::delta {

enum class ChangeKind { kInsert, kDelete, kModify };

[[nodiscard]] const char* to_string(ChangeKind kind) noexcept;

/// One differential tuple: the change made to the logical tuple `tid`.
struct DeltaRow {
  rel::TupleId tid;
  std::optional<std::vector<rel::Value>> old_values;  // absent for insert
  std::optional<std::vector<rel::Value>> new_values;  // absent for delete
  common::Timestamp ts;
  /// Position in the owning log, assigned by DeltaRelation::append (any
  /// caller-supplied value is overwritten). Together with ts it forms the
  /// row's lineage identity (rel::prov::ProvId); not part of the wire
  /// format — a restored log reassigns identical seqs in append order.
  std::uint64_t seq = 0;

  [[nodiscard]] ChangeKind kind() const noexcept {
    if (!old_values) return ChangeKind::kInsert;
    if (!new_values) return ChangeKind::kDelete;
    return ChangeKind::kModify;
  }

  /// Serialized size under the wire cost model (tid + ts + both halves).
  [[nodiscard]] std::size_t byte_size() const noexcept;
};

/// Net effect per tid of all changes in `rows` strictly after `since`, in
/// first-seen order (see DeltaRelation::net_effect for the collapse rules).
/// `rows` must be ts-ordered. Shared by DeltaRelation and DeltaSnapshot so
/// the live log and a pinned snapshot derive byte-identical views.
[[nodiscard]] std::vector<DeltaRow> net_effect_of(const std::vector<DeltaRow>& rows,
                                                  common::Timestamp since);

class DeltaRelation {
  /// Shared between the relation and its outstanding ReadPins: the pin
  /// count gates garbage collection. Held by shared_ptr so DeltaRelation
  /// stays movable (Table moves it) — copies of a DeltaRelation share the
  /// pin state, which is harmless: pins only ever make GC more cautious.
  struct PinState {
    common::Mutex mu{"delta_pins", common::lockorder::LockRank::kDeltaPins};
    std::size_t pins CQ_GUARDED_BY(mu) = 0;
  };

 public:
  /// `base_schema` is the schema of the relation whose changes we log.
  explicit DeltaRelation(rel::Schema base_schema);

  [[nodiscard]] const rel::Schema& base_schema() const noexcept { return base_schema_; }

  /// Name this log for lineage (normally the owning table's name, set by
  /// catalog::Database). Interns the name; cited ProvIds resolve back to
  /// it via rel::prov::relation_name().
  void set_name(const std::string& name);

  /// Interned lineage id of this relation (0 when never named).
  [[nodiscard]] std::uint32_t prov_rel() const noexcept { return prov_rel_; }

  /// Lineage identity of one physical row of this log.
  [[nodiscard]] rel::prov::ProvId prov_id_of(const DeltaRow& row) const noexcept {
    return {row.ts.ticks(), prov_rel_, row.seq};
  }

  /// Schema of the wide differential view: old half, new half, then
  /// "__tid" and "__ts" bookkeeping columns (both INT).
  [[nodiscard]] const rel::Schema& wide_schema() const noexcept { return wide_schema_; }

  // ---- recording (normally called by catalog::Database at commit) ----
  void record_insert(rel::TupleId tid, std::vector<rel::Value> values,
                     common::Timestamp ts);
  void record_delete(rel::TupleId tid, std::vector<rel::Value> old_values,
                     common::Timestamp ts);
  void record_modify(rel::TupleId tid, std::vector<rel::Value> old_values,
                     std::vector<rel::Value> new_values, common::Timestamp ts);

  /// Append an already-formed row (used by translators and tests). Rows must
  /// arrive in non-decreasing timestamp order.
  void append(DeltaRow row);

  [[nodiscard]] const std::vector<DeltaRow>& rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }
  [[nodiscard]] bool empty() const noexcept { return rows_.empty(); }

  /// Timestamp of the most recent change, or nullopt when empty.
  [[nodiscard]] std::optional<common::Timestamp> latest() const noexcept;

  /// True when at least one change is strictly after `since`.
  [[nodiscard]] bool changed_since(common::Timestamp since) const noexcept;

  // ---- derived views ----

  /// Net effect per tid of all changes strictly after `since`, in first-seen
  /// order. Guarantees the paper's "no tid appears in multiple rows"
  /// invariant for the queried window: consecutive changes to one tid
  /// collapse (insert∘modify = insert, insert∘delete = nothing,
  /// modify∘modify = one modify, modify∘delete = delete). A modification
  /// whose old and new values are identical also collapses to nothing.
  [[nodiscard]] std::vector<DeltaRow> net_effect(common::Timestamp since) const;

  /// insertions(ΔR) restricted to ts > since, as a relation over the base
  /// schema. Rows carry their tids. Computed from the net effect.
  [[nodiscard]] rel::Relation insertions(common::Timestamp since) const;

  /// deletions(ΔR) restricted to ts > since, over the base schema.
  [[nodiscard]] rel::Relation deletions(common::Timestamp since) const;

  /// The wide differential view (net effect, ts > since) as a relation over
  /// wide_schema(), for direct evaluation of differential predicates like
  ///   price_old > 120 AND price_new > 120 AND __ts > t_i   (Section 4.2).
  [[nodiscard]] rel::Relation as_wide_relation(common::Timestamp since) const;

  // ---- garbage collection (Section 5.4) ----

  /// RAII read pin: while at least one pin is alive, truncate_before is a
  /// no-op, so a concurrent evaluation holding a DeltaSnapshot can keep
  /// reading rows() without racing GC reclamation. Movable, not copyable.
  class ReadPin {
   public:
    ReadPin() noexcept = default;
    ReadPin(ReadPin&& other) noexcept : state_(std::move(other.state_)) {}
    ReadPin& operator=(ReadPin&& other) noexcept {
      if (this != &other) {
        release();
        state_ = std::move(other.state_);
      }
      return *this;
    }
    ReadPin(const ReadPin&) = delete;
    ReadPin& operator=(const ReadPin&) = delete;
    ~ReadPin() { release(); }

   private:
    friend class DeltaRelation;
    explicit ReadPin(std::shared_ptr<PinState> state);
    void release() noexcept;

    std::shared_ptr<PinState> state_;
  };

  /// Pin the log against garbage collection for the lifetime of the
  /// returned handle. The pin mutex hand-off also gives a happens-before
  /// edge between the pinning thread and any GC pass it defers.
  [[nodiscard]] ReadPin pin_reads() const;

  /// Number of live read pins (diagnostics / tests).
  [[nodiscard]] std::size_t read_pins() const;

  /// Drop every row with ts <= `before`. Returns how many rows were
  /// dropped. While read pins are outstanding the call reclaims nothing
  /// and returns 0 — reclamation is simply retried by a later GC pass.
  std::size_t truncate_before(common::Timestamp before);

  /// Highest timestamp ever dropped by truncate_before, or nullopt when
  /// nothing has been reclaimed yet. Lets ContinualQuery::restore detect
  /// that the window (last_execution, now] it wants to roll back has been
  /// partially reclaimed, so it must re-prime instead of trusting a view
  /// derived from a truncated log.
  [[nodiscard]] std::optional<common::Timestamp> truncated_through() const noexcept {
    return truncated_through_;
  }

  /// Approximate memory footprint in bytes (wire cost model). O(1):
  /// maintained incrementally by append/truncate_before, so resource
  /// gauges and Database::delta_bytes never rescan the log.
  [[nodiscard]] std::size_t byte_size() const noexcept { return bytes_; }

  [[nodiscard]] std::string to_string(std::size_t max_rows = 50) const;

 private:
  void check_values(const std::optional<std::vector<rel::Value>>& values) const;

  rel::Schema base_schema_;
  rel::Schema wide_schema_;
  std::uint32_t prov_rel_ = 0;   // interned lineage id; 0 = unnamed
  std::uint64_t next_seq_ = 0;   // monotone over the log's lifetime
  std::vector<DeltaRow> rows_;  // ts-ordered
  std::size_t bytes_ = 0;       // sum of rows_[i].byte_size()
  std::optional<common::Timestamp> truncated_through_;  // max ts reclaimed
  std::shared_ptr<PinState> pin_state_ = std::make_shared<PinState>();
};

}  // namespace cq::delta
