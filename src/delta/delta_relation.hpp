// Differential relations (Section 4.1): the log of changes to one base
// relation, represented exactly as the paper describes —
//
//   | A1_old ... An_old | A1_new ... An_new | tid | ts |
//
// where insertions leave the old half null, deletions leave the new half
// null, and modifications carry both. A delta relation spans many
// transactions; rows older than every active CQ's last execution are
// reclaimed by garbage collection (Section 5.4, delta_zone.hpp).
//
// Two derived views drive all differential evaluation:
//   insertions(since): tuples added to R after `since` (inserts + the new
//                      versions of modifications);
//   deletions(since):  tuples removed from R after `since` (deletes + the
//                      old versions of modifications).
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "common/timestamp.hpp"
#include "relation/relation.hpp"
#include "relation/schema.hpp"

namespace cq::delta {

enum class ChangeKind { kInsert, kDelete, kModify };

[[nodiscard]] const char* to_string(ChangeKind kind) noexcept;

/// One differential tuple: the change made to the logical tuple `tid`.
struct DeltaRow {
  rel::TupleId tid;
  std::optional<std::vector<rel::Value>> old_values;  // absent for insert
  std::optional<std::vector<rel::Value>> new_values;  // absent for delete
  common::Timestamp ts;

  [[nodiscard]] ChangeKind kind() const noexcept {
    if (!old_values) return ChangeKind::kInsert;
    if (!new_values) return ChangeKind::kDelete;
    return ChangeKind::kModify;
  }

  /// Serialized size under the wire cost model (tid + ts + both halves).
  [[nodiscard]] std::size_t byte_size() const noexcept;
};

class DeltaRelation {
 public:
  /// `base_schema` is the schema of the relation whose changes we log.
  explicit DeltaRelation(rel::Schema base_schema);

  [[nodiscard]] const rel::Schema& base_schema() const noexcept { return base_schema_; }

  /// Schema of the wide differential view: old half, new half, then
  /// "__tid" and "__ts" bookkeeping columns (both INT).
  [[nodiscard]] const rel::Schema& wide_schema() const noexcept { return wide_schema_; }

  // ---- recording (normally called by catalog::Database at commit) ----
  void record_insert(rel::TupleId tid, std::vector<rel::Value> values,
                     common::Timestamp ts);
  void record_delete(rel::TupleId tid, std::vector<rel::Value> old_values,
                     common::Timestamp ts);
  void record_modify(rel::TupleId tid, std::vector<rel::Value> old_values,
                     std::vector<rel::Value> new_values, common::Timestamp ts);

  /// Append an already-formed row (used by translators and tests). Rows must
  /// arrive in non-decreasing timestamp order.
  void append(DeltaRow row);

  [[nodiscard]] const std::vector<DeltaRow>& rows() const noexcept { return rows_; }
  [[nodiscard]] std::size_t size() const noexcept { return rows_.size(); }
  [[nodiscard]] bool empty() const noexcept { return rows_.empty(); }

  /// Timestamp of the most recent change, or nullopt when empty.
  [[nodiscard]] std::optional<common::Timestamp> latest() const noexcept;

  /// True when at least one change is strictly after `since`.
  [[nodiscard]] bool changed_since(common::Timestamp since) const noexcept;

  // ---- derived views ----

  /// Net effect per tid of all changes strictly after `since`, in first-seen
  /// order. Guarantees the paper's "no tid appears in multiple rows"
  /// invariant for the queried window: consecutive changes to one tid
  /// collapse (insert∘modify = insert, insert∘delete = nothing,
  /// modify∘modify = one modify, modify∘delete = delete). A modification
  /// whose old and new values are identical also collapses to nothing.
  [[nodiscard]] std::vector<DeltaRow> net_effect(common::Timestamp since) const;

  /// insertions(ΔR) restricted to ts > since, as a relation over the base
  /// schema. Rows carry their tids. Computed from the net effect.
  [[nodiscard]] rel::Relation insertions(common::Timestamp since) const;

  /// deletions(ΔR) restricted to ts > since, over the base schema.
  [[nodiscard]] rel::Relation deletions(common::Timestamp since) const;

  /// The wide differential view (net effect, ts > since) as a relation over
  /// wide_schema(), for direct evaluation of differential predicates like
  ///   price_old > 120 AND price_new > 120 AND __ts > t_i   (Section 4.2).
  [[nodiscard]] rel::Relation as_wide_relation(common::Timestamp since) const;

  // ---- garbage collection (Section 5.4) ----

  /// Drop every row with ts <= `before`. Returns how many rows were dropped.
  std::size_t truncate_before(common::Timestamp before);

  /// Approximate memory footprint in bytes (wire cost model). O(1):
  /// maintained incrementally by append/truncate_before, so resource
  /// gauges and Database::delta_bytes never rescan the log.
  [[nodiscard]] std::size_t byte_size() const noexcept { return bytes_; }

  [[nodiscard]] std::string to_string(std::size_t max_rows = 50) const;

 private:
  void check_values(const std::optional<std::vector<rel::Value>>& values) const;

  rel::Schema base_schema_;
  rel::Schema wide_schema_;
  std::vector<DeltaRow> rows_;  // ts-ordered
  std::size_t bytes_ = 0;       // sum of rows_[i].byte_size()
};

}  // namespace cq::delta
