#include "delta/delta_snapshot.hpp"

namespace cq::delta {

using common::Timestamp;
using rel::Relation;
using rel::Tuple;

DeltaSnapshot::DeltaSnapshot(const DeltaRelation& source)
    : source_(source), pin_(source.pin_reads()) {}

const DeltaSnapshot::Views& DeltaSnapshot::views(Timestamp since) const {
  common::LockGuard lock(mu_);
  auto it = cache_.find(since);
  if (it != cache_.end()) return it->second;

  Views v{net_effect_of(source_.rows(), since), Relation(source_.base_schema()),
          Relation(source_.base_schema())};
  // Lineage leaves must match DeltaRelation::insertions/deletions exactly:
  // the parallel path reads snapshots, the sequential path reads the live
  // log, and the two must stay bit-identical.
  const bool lineage = rel::prov::enabled();
  for (const auto& row : v.net) {
    if (row.new_values) {
      Tuple t(*row.new_values, row.tid);
      if (lineage) t.set_prov(rel::prov::leaf(source_.prov_id_of(row)));
      v.ins.append(std::move(t));
    }
    if (row.old_values) {
      Tuple t(*row.old_values, row.tid);
      if (lineage) t.set_prov(rel::prov::leaf(source_.prov_id_of(row)));
      v.del.append(std::move(t));
    }
  }
  return cache_.emplace(since, std::move(v)).first->second;
}

const std::vector<DeltaRow>& DeltaSnapshot::net_effect(Timestamp since) const {
  return views(since).net;
}

const Relation& DeltaSnapshot::insertions(Timestamp since) const {
  return views(since).ins;
}

const Relation& DeltaSnapshot::deletions(Timestamp since) const {
  return views(since).del;
}

}  // namespace cq::delta
