#include "delta/delta_relation.hpp"

#include <algorithm>
#include <sstream>
#include <unordered_map>

#include "common/error.hpp"

namespace cq::delta {

using common::Timestamp;
using rel::Relation;
using rel::Tuple;
using rel::TupleId;
using rel::Value;

const char* to_string(ChangeKind kind) noexcept {
  switch (kind) {
    case ChangeKind::kInsert: return "INSERT";
    case ChangeKind::kDelete: return "DELETE";
    case ChangeKind::kModify: return "MODIFY";
  }
  return "?";
}

DeltaRelation::DeltaRelation(rel::Schema base_schema)
    : base_schema_(std::move(base_schema)) {
  rel::Schema doubled = base_schema_.doubled();
  std::vector<rel::Attribute> wide = doubled.attributes();
  wide.push_back({"__tid", rel::ValueType::kInt});
  wide.push_back({"__ts", rel::ValueType::kInt});
  wide_schema_ = rel::Schema(std::move(wide));
}

void DeltaRelation::check_values(
    const std::optional<std::vector<Value>>& values) const {
  if (values && values->size() != base_schema_.size()) {
    throw common::SchemaMismatch("DeltaRelation: arity " +
                                 std::to_string(values->size()) + " != base arity " +
                                 std::to_string(base_schema_.size()));
  }
}

void DeltaRelation::append(DeltaRow row) {
  if (!row.tid.valid()) {
    throw common::InvalidArgument("DeltaRelation: row must carry a valid tid");
  }
  if (!row.old_values && !row.new_values) {
    throw common::InvalidArgument("DeltaRelation: row must carry old or new values");
  }
  check_values(row.old_values);
  check_values(row.new_values);
  if (!rows_.empty() && row.ts < rows_.back().ts) {
    throw common::InvalidArgument(
        "DeltaRelation: timestamps must be non-decreasing (got " + row.ts.to_string() +
        " after " + rows_.back().ts.to_string() + ")");
  }
  row.seq = next_seq_++;
  bytes_ += row.byte_size();
  rows_.push_back(std::move(row));
}

void DeltaRelation::set_name(const std::string& name) {
  prov_rel_ = rel::prov::intern_relation(name);
}

void DeltaRelation::record_insert(TupleId tid, std::vector<Value> values, Timestamp ts) {
  append(DeltaRow{tid, std::nullopt, std::move(values), ts});
}

void DeltaRelation::record_delete(TupleId tid, std::vector<Value> old_values,
                                  Timestamp ts) {
  append(DeltaRow{tid, std::move(old_values), std::nullopt, ts});
}

void DeltaRelation::record_modify(TupleId tid, std::vector<Value> old_values,
                                  std::vector<Value> new_values, Timestamp ts) {
  append(DeltaRow{tid, std::move(old_values), std::move(new_values), ts});
}

std::optional<Timestamp> DeltaRelation::latest() const noexcept {
  if (rows_.empty()) return std::nullopt;
  return rows_.back().ts;
}

bool DeltaRelation::changed_since(Timestamp since) const noexcept {
  return !rows_.empty() && rows_.back().ts > since;
}

std::vector<DeltaRow> net_effect_of(const std::vector<DeltaRow>& rows, Timestamp since) {
  std::vector<DeltaRow> out;
  std::unordered_map<TupleId, std::size_t> position;  // tid -> index in out

  // rows is ts-ordered; binary search the window start.
  auto first = std::lower_bound(
      rows.begin(), rows.end(), since,
      [](const DeltaRow& r, Timestamp t) { return r.ts <= t; });

  for (auto it = first; it != rows.end(); ++it) {
    const DeltaRow& change = *it;
    auto pos = position.find(change.tid);
    if (pos == position.end()) {
      position.emplace(change.tid, out.size());
      out.push_back(change);
      continue;
    }
    DeltaRow& acc = out[pos->second];
    // Compose acc (earlier) with change (later). The earliest old half and
    // the latest new half survive. The latest row also lends its (ts, seq)
    // so the net row's lineage id resolves to a physical row in the log.
    acc.new_values = change.new_values;
    acc.ts = change.ts;
    acc.seq = change.seq;
  }

  // Collapse no-ops: insert∘delete (both halves absent after composition is
  // impossible by construction, so detect via kind) and modify that landed
  // back on the original values.
  std::vector<DeltaRow> compacted;
  compacted.reserve(out.size());
  for (auto& row : out) {
    if (!row.old_values && !row.new_values) continue;  // defensive; unreachable
    if (row.old_values && !row.new_values) {
      compacted.push_back(std::move(row));  // net delete
      continue;
    }
    if (!row.old_values && row.new_values) {
      compacted.push_back(std::move(row));  // net insert
      continue;
    }
    // Modify: drop when values are unchanged end-to-end.
    const auto& o = *row.old_values;
    const auto& n = *row.new_values;
    bool identical = o.size() == n.size();
    for (std::size_t i = 0; identical && i < o.size(); ++i) identical = o[i] == n[i];
    if (!identical) compacted.push_back(std::move(row));
  }
  return compacted;
}

std::vector<DeltaRow> DeltaRelation::net_effect(Timestamp since) const {
  return net_effect_of(rows_, since);
}

rel::Relation DeltaRelation::insertions(Timestamp since) const {
  Relation out(base_schema_);
  const bool lineage = rel::prov::enabled();
  for (const auto& row : net_effect(since)) {
    if (!row.new_values) continue;
    Tuple t(*row.new_values, row.tid);
    if (lineage) t.set_prov(rel::prov::leaf(prov_id_of(row)));
    out.append(std::move(t));
  }
  return out;
}

rel::Relation DeltaRelation::deletions(Timestamp since) const {
  Relation out(base_schema_);
  const bool lineage = rel::prov::enabled();
  for (const auto& row : net_effect(since)) {
    if (!row.old_values) continue;
    Tuple t(*row.old_values, row.tid);
    if (lineage) t.set_prov(rel::prov::leaf(prov_id_of(row)));
    out.append(std::move(t));
  }
  return out;
}

rel::Relation DeltaRelation::as_wide_relation(Timestamp since) const {
  Relation out(wide_schema_);
  const std::size_t n = base_schema_.size();
  for (const auto& row : net_effect(since)) {
    std::vector<Value> values;
    values.reserve(2 * n + 2);
    for (std::size_t i = 0; i < n; ++i) {
      values.push_back(row.old_values ? (*row.old_values)[i] : Value::null());
    }
    for (std::size_t i = 0; i < n; ++i) {
      values.push_back(row.new_values ? (*row.new_values)[i] : Value::null());
    }
    values.emplace_back(static_cast<std::int64_t>(row.tid.raw()));
    values.emplace_back(row.ts.ticks());
    out.append(Tuple(std::move(values), row.tid));
  }
  return out;
}

DeltaRelation::ReadPin::ReadPin(std::shared_ptr<PinState> state)
    : state_(std::move(state)) {
  common::LockGuard lock(state_->mu);
  ++state_->pins;
}

void DeltaRelation::ReadPin::release() noexcept {
  if (!state_) return;
  common::LockGuard lock(state_->mu);
  --state_->pins;
}

DeltaRelation::ReadPin DeltaRelation::pin_reads() const {
  return ReadPin(pin_state_);
}

std::size_t DeltaRelation::read_pins() const {
  common::LockGuard lock(pin_state_->mu);
  return pin_state_->pins;
}

std::size_t DeltaRelation::truncate_before(Timestamp before) {
  // Hold the pin mutex across the whole truncation: a pin taken while we
  // reclaim blocks until the erase is done, and an outstanding pin makes
  // this pass a no-op. Either way no reader ever observes rows_ mid-erase,
  // and the lock hand-off orders the reader's accesses against ours.
  common::LockGuard lock(pin_state_->mu);
  if (pin_state_->pins > 0) return 0;  // deferred: a later GC pass retries
  auto keep_from = std::lower_bound(
      rows_.begin(), rows_.end(), before,
      [](const DeltaRow& r, Timestamp t) { return r.ts <= t; });
  const std::size_t dropped = static_cast<std::size_t>(keep_from - rows_.begin());
  if (dropped > 0) {
    for (auto it = rows_.begin(); it != keep_from; ++it) bytes_ -= it->byte_size();
    const Timestamp last_dropped = (keep_from - 1)->ts;
    if (!truncated_through_ || last_dropped > *truncated_through_) {
      truncated_through_ = last_dropped;
    }
    rows_.erase(rows_.begin(), keep_from);
  }
  return dropped;
}

std::size_t DeltaRow::byte_size() const noexcept {
  std::size_t total = 16;  // tid + ts
  if (old_values) {
    for (const auto& v : *old_values) total += v.byte_size();
  }
  if (new_values) {
    for (const auto& v : *new_values) total += v.byte_size();
  }
  return total;
}

std::string DeltaRelation::to_string(std::size_t max_rows) const {
  std::ostringstream os;
  os << "Δ" << base_schema_.to_string() << " [" << rows_.size() << " rows]\n";
  std::size_t shown = 0;
  for (const auto& row : rows_) {
    if (shown++ == max_rows) {
      os << "  ...\n";
      break;
    }
    os << "  " << cq::delta::to_string(row.kind()) << " tid=" << row.tid.to_string() << " ts="
       << row.ts.to_string();
    if (row.old_values) os << " old=" << Tuple(*row.old_values).to_string();
    if (row.new_values) os << " new=" << Tuple(*row.new_values).to_string();
    os << "\n";
  }
  return os.str();
}

}  // namespace cq::delta
