#include "workload/stocks.hpp"

#include <algorithm>
#include <unordered_set>

#include "catalog/transaction.hpp"
#include "common/error.hpp"

namespace cq::wl {

using rel::Value;

namespace {
constexpr const char* kExchanges[] = {"NYSE", "NASDAQ", "TSE", "LSE"};
}

std::string StocksWorkload::symbol_name(std::size_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "SYM%06zu", i);
  return buf;
}

StocksWorkload::StocksWorkload(cat::Database& db, std::string table,
                               const StocksConfig& config, common::Rng& rng)
    : db_(db), table_(std::move(table)), config_(config), rng_(rng),
      next_symbol_(config.symbols) {
  db_.create_table(table_, rel::Schema::of({{"symbol", rel::ValueType::kString},
                                            {"exchange", rel::ValueType::kString},
                                            {"price", rel::ValueType::kInt},
                                            {"volume", rel::ValueType::kInt}}));
  std::size_t listed = 0;
  while (listed < config_.symbols) {
    auto txn = db_.begin();
    const std::size_t batch = std::min<std::size_t>(config_.symbols - listed, 1024);
    for (std::size_t i = 0; i < batch; ++i) {
      listed_.push_back(txn.insert(
          table_, {Value(symbol_name(listed + i)),
                   Value(std::string(kExchanges[rng_.index(std::size(kExchanges))])),
                   Value(rng_.uniform_int(config_.price_lo, config_.price_hi)),
                   Value(rng_.uniform_int(100, 100000))}));
    }
    txn.commit();
    listed += batch;
  }
}

void StocksWorkload::step(std::size_t trades, std::size_t listings,
                          std::size_t delistings, std::size_t batch) {
  if (batch == 0) throw common::InvalidArgument("StocksWorkload::step: batch must be > 0");

  // Build the op sequence up front, then commit it in transaction batches.
  enum class Op { kTrade, kList, kDelist };
  std::vector<Op> ops;
  ops.reserve(trades + listings + delistings);
  ops.insert(ops.end(), trades, Op::kTrade);
  ops.insert(ops.end(), listings, Op::kList);
  ops.insert(ops.end(), delistings, Op::kDelist);
  rng_.shuffle(ops);

  std::size_t done = 0;
  while (done < ops.size()) {
    auto txn = db_.begin();
    // Tids already written by this (uncommitted) transaction; touching the
    // same tid twice in one transaction needs base-state reads we skip.
    std::unordered_set<rel::TupleId::rep> touched;
    const std::size_t end = std::min(ops.size(), done + batch);
    for (; done < end; ++done) {
      switch (ops[done]) {
        case Op::kTrade: {
          if (listed_.empty()) break;
          const rel::TupleId tid =
              listed_[rng_.zipf(listed_.size(), config_.zipf_theta)];
          if (touched.contains(tid.raw())) break;
          const rel::Tuple* row = db_.table(table_).find(tid);
          if (row == nullptr) break;  // already delisted
          std::vector<Value> values = row->values();
          const std::int64_t move = rng_.uniform_int(-5, 5);
          values[2] = Value(std::max<std::int64_t>(1, values[2].as_int() + move));
          values[3] = Value(rng_.uniform_int(100, 100000));
          txn.modify(table_, tid, std::move(values));
          touched.insert(tid.raw());
          break;
        }
        case Op::kList: {
          const rel::TupleId tid = txn.insert(
              table_,
              {Value(symbol_name(next_symbol_++)),
               Value(std::string(kExchanges[rng_.index(std::size(kExchanges))])),
               Value(rng_.uniform_int(config_.price_lo, config_.price_hi)),
               Value(rng_.uniform_int(100, 100000))});
          listed_.push_back(tid);
          touched.insert(tid.raw());
          break;
        }
        case Op::kDelist: {
          if (listed_.empty()) break;
          const std::size_t at = rng_.index(listed_.size());
          const rel::TupleId tid = listed_[at];
          if (touched.contains(tid.raw()) || !db_.table(table_).contains(tid)) break;
          txn.erase(table_, tid);
          touched.insert(tid.raw());
          listed_[at] = listed_.back();
          listed_.pop_back();
          break;
        }
      }
    }
    txn.commit();
  }
}

}  // namespace cq::wl
