#include "workload/sweep.hpp"

#include <algorithm>
#include <unordered_set>

#include "catalog/transaction.hpp"
#include "common/error.hpp"

namespace cq::wl {

using alg::Expr;
using rel::Value;

SweepTable::SweepTable(cat::Database& db, std::string name, std::size_t rows,
                       std::size_t groups, common::Rng& rng, std::size_t payload_width)
    : db_(db), name_(std::move(name)), groups_(std::max<std::size_t>(1, groups)),
      rng_(rng), payload_width_(payload_width) {
  db_.create_table(name_, rel::Schema::of({{"key", rel::ValueType::kInt},
                                           {"grp", rel::ValueType::kInt},
                                           {"payload", rel::ValueType::kString}}));
  std::size_t loaded = 0;
  while (loaded < rows) {
    auto txn = db_.begin();
    const std::size_t batch = std::min<std::size_t>(rows - loaded, 2048);
    for (std::size_t i = 0; i < batch; ++i) txn.insert(name_, random_row());
    txn.commit();
    loaded += batch;
  }
  live_.reserve(rows);
  for (const auto& row : db_.table(name_).rows()) live_.push_back(row.tid());
}

std::vector<Value> SweepTable::random_row() {
  return {Value(rng_.uniform_int(0, kSweepKeySpace - 1)),
          Value(rng_.uniform_int(0, static_cast<std::int64_t>(groups_) - 1)),
          Value(rng_.string(payload_width_))};
}

void SweepTable::update(std::size_t count, const SweepMix& mix, std::size_t batch) {
  if (batch == 0) throw common::InvalidArgument("SweepTable::update: batch > 0");
  std::size_t done = 0;
  while (done < count) {
    auto txn = db_.begin();
    std::unordered_set<rel::TupleId::rep> touched;
    const std::size_t end = std::min(count, done + batch);
    for (; done < end; ++done) {
      const double roll = rng_.uniform01();
      if (!live_.empty() && roll < mix.delete_fraction) {
        const std::size_t at = rng_.index(live_.size());
        if (touched.contains(live_[at].raw())) continue;
        touched.insert(live_[at].raw());
        txn.erase(name_, live_[at]);
        live_[at] = live_.back();
        live_.pop_back();
      } else if (!live_.empty() &&
                 roll < mix.delete_fraction + mix.modify_fraction) {
        const rel::TupleId tid = live_[rng_.index(live_.size())];
        if (touched.contains(tid.raw())) continue;
        const rel::Tuple* row = db_.table(name_).find(tid);
        if (row == nullptr) continue;
        std::vector<Value> values = row->values();
        values[0] = Value(rng_.uniform_int(0, kSweepKeySpace - 1));
        txn.modify(name_, tid, std::move(values));
        touched.insert(tid.raw());
      } else {
        const rel::TupleId tid = txn.insert(name_, random_row());
        live_.push_back(tid);
        touched.insert(tid.raw());
      }
    }
    txn.commit();
  }
}

alg::ExprPtr SweepTable::selection(double s, const std::string& qualifier) const {
  s = std::clamp(s, 0.0, 1.0);
  const auto hi = static_cast<std::int64_t>(s * static_cast<double>(kSweepKeySpace));
  const std::string column = qualifier.empty() ? "key" : qualifier + ".key";
  return Expr::cmp(alg::CmpOp::kLt, Expr::col(column), Expr::lit(Value(hi)));
}

qry::SpjQuery SweepTable::selection_query(double s) const {
  qry::SpjQuery q;
  q.from.push_back({name_, ""});
  q.where = selection(s);
  return q;
}

qry::SpjQuery join_query(const std::vector<const SweepTable*>& tables,
                         double per_table_selectivity) {
  if (tables.size() < 2) throw common::InvalidArgument("join_query: >= 2 tables");
  qry::SpjQuery q;
  std::vector<std::string> aliases;
  for (std::size_t i = 0; i < tables.size(); ++i) {
    std::string alias = "j";
    alias += std::to_string(i);
    q.from.push_back({tables[i]->name(), alias});
    aliases.push_back(std::move(alias));
  }
  std::vector<alg::ExprPtr> conjuncts;
  for (std::size_t i = 1; i < aliases.size(); ++i) {
    conjuncts.push_back(Expr::cmp(alg::CmpOp::kEq,
                                  Expr::col(aliases[i - 1] + ".grp"),
                                  Expr::col(aliases[i] + ".grp")));
  }
  for (std::size_t i = 0; i < tables.size(); ++i) {
    conjuncts.push_back(tables[i]->selection(per_table_selectivity, aliases[i]));
  }
  q.where = alg::conjoin(conjuncts);
  return q;
}

}  // namespace cq::wl
