// Stock-market workload: the paper's running example (Example 1's Stocks
// relation and the intro's Q3 "IBM stock transactions that differ by more
// than $5 from $75"). Generates a Stocks table and a stream of price-tick
// transactions with a configurable insert/modify/delete mix.
#pragma once

#include <string>
#include <vector>

#include "catalog/database.hpp"
#include "common/rng.hpp"

namespace cq::wl {

struct StocksConfig {
  std::size_t symbols = 1000;         // initial listed symbols
  std::int64_t price_lo = 10;         // initial price range (dollars)
  std::int64_t price_hi = 200;
  double zipf_theta = 0.8;            // trade concentration on hot symbols
};

/// Schema: (symbol STRING, exchange STRING, price INT, volume INT).
class StocksWorkload {
 public:
  /// Creates table `table` in `db` and lists `config.symbols` symbols.
  StocksWorkload(cat::Database& db, std::string table, const StocksConfig& config,
                 common::Rng& rng);

  /// One market step: `trades` price movements (modifications), plus
  /// `listings` new symbols and `delistings` removals, committed as one
  /// transaction per `batch` operations.
  void step(std::size_t trades, std::size_t listings = 0, std::size_t delistings = 0,
            std::size_t batch = 8);

  /// Deterministic symbol name for index i ("SYM000042").
  [[nodiscard]] static std::string symbol_name(std::size_t i);

  [[nodiscard]] const std::string& table() const noexcept { return table_; }

 private:
  cat::Database& db_;
  std::string table_;
  StocksConfig config_;
  common::Rng& rng_;
  std::vector<rel::TupleId> listed_;
  std::size_t next_symbol_;
};

}  // namespace cq::wl
