#include "workload/accounts.hpp"

#include <algorithm>
#include <unordered_set>

#include "catalog/transaction.hpp"
#include "common/error.hpp"

namespace cq::wl {

using rel::Value;

namespace {
constexpr const char* kBranches[] = {"downtown", "airport", "campus", "harbor"};
}

AccountsWorkload::AccountsWorkload(cat::Database& db, std::string table,
                                   const AccountsConfig& config, common::Rng& rng)
    : db_(db), table_(std::move(table)), config_(config), rng_(rng) {
  db_.create_table(table_, rel::Schema::of({{"account", rel::ValueType::kInt},
                                            {"branch", rel::ValueType::kString},
                                            {"amount", rel::ValueType::kInt}}));
  std::size_t opened = 0;
  while (opened < config_.accounts) {
    auto txn = db_.begin();
    const std::size_t batch = std::min<std::size_t>(config_.accounts - opened, 1024);
    for (std::size_t i = 0; i < batch; ++i) {
      open_.push_back(txn.insert(
          table_,
          {Value(next_account_++),
           Value(std::string(kBranches[rng_.index(std::size(kBranches))])),
           Value(rng_.uniform_int(config_.initial_balance_lo,
                                  config_.initial_balance_hi))}));
    }
    txn.commit();
    opened += batch;
  }
}

std::int64_t AccountsWorkload::step(std::size_t movements, std::size_t batch) {
  if (batch == 0) throw common::InvalidArgument("AccountsWorkload::step: batch > 0");
  std::int64_t net = 0;
  std::size_t done = 0;
  while (done < movements && !open_.empty()) {
    auto txn = db_.begin();
    std::unordered_set<rel::TupleId::rep> touched;
    const std::size_t end = std::min(movements, done + batch);
    for (; done < end; ++done) {
      const rel::TupleId tid = open_[rng_.index(open_.size())];
      if (touched.contains(tid.raw())) continue;
      const rel::Tuple* row = db_.table(table_).find(tid);
      if (row == nullptr) continue;
      std::vector<Value> values = row->values();
      const std::int64_t balance = values[2].as_int();
      std::int64_t amount = rng_.uniform_int(config_.movement_lo, config_.movement_hi);
      if (rng_.chance(0.5)) amount = -std::min(amount, balance);  // withdrawal
      values[2] = Value(balance + amount);
      txn.modify(table_, tid, std::move(values));
      touched.insert(tid.raw());
      net += amount;
    }
    txn.commit();
  }
  return net;
}

rel::TupleId AccountsWorkload::open_account(std::int64_t balance) {
  auto txn = db_.begin();
  const rel::TupleId tid = txn.insert(
      table_, {Value(next_account_++),
               Value(std::string(kBranches[rng_.index(std::size(kBranches))])),
               Value(balance)});
  txn.commit();
  open_.push_back(tid);
  return tid;
}

std::int64_t AccountsWorkload::close_random_account() {
  if (open_.empty()) return 0;
  const std::size_t at = rng_.index(open_.size());
  const rel::TupleId tid = open_[at];
  const rel::Tuple* row = db_.table(table_).find(tid);
  const std::int64_t balance = row != nullptr ? row->at(2).as_int() : 0;
  auto txn = db_.begin();
  txn.erase(table_, tid);
  txn.commit();
  open_[at] = open_.back();
  open_.pop_back();
  return balance;
}

}  // namespace cq::wl
