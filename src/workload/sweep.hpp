// Parameter-sweep workload: tables with a uniform integer `key` column so
// selection predicates of any target selectivity can be constructed
// analytically, plus a `grp` column with controllable join fan-out. Used by
// the benchmark harness for the E1/E2/E3 sweeps.
#pragma once

#include <string>
#include <vector>

#include "algebra/expr.hpp"
#include "catalog/database.hpp"
#include "common/rng.hpp"
#include "query/ast.hpp"

namespace cq::wl {

inline constexpr std::int64_t kSweepKeySpace = 1'000'000;

struct SweepMix {
  double modify_fraction = 1.0 / 3;
  double delete_fraction = 1.0 / 3;  // remainder: inserts
};

/// Schema: (key INT uniform in [0, kSweepKeySpace), grp INT in [0, groups),
/// payload STRING of fixed width). `groups` controls equi-join fan-out.
class SweepTable {
 public:
  SweepTable(cat::Database& db, std::string name, std::size_t rows, std::size_t groups,
             common::Rng& rng, std::size_t payload_width = 16);

  /// Apply `count` uniformly targeted updates with the given mix.
  void update(std::size_t count, const SweepMix& mix, std::size_t batch = 8);

  /// Selection predicate with exact expected selectivity `s` over `key`.
  [[nodiscard]] alg::ExprPtr selection(double s, const std::string& qualifier = "") const;

  /// Single-table selection query with selectivity `s`.
  [[nodiscard]] qry::SpjQuery selection_query(double s) const;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] std::size_t groups() const noexcept { return groups_; }

 private:
  std::vector<rel::Value> random_row();

  cat::Database& db_;
  std::string name_;
  std::size_t groups_;
  common::Rng& rng_;
  std::size_t payload_width_;
  std::vector<rel::TupleId> live_;
};

/// Equi-join query over `tables` (joined pairwise on grp), with a
/// per-table key-selectivity filter.
[[nodiscard]] qry::SpjQuery join_query(const std::vector<const SweepTable*>& tables,
                                       double per_table_selectivity);

}  // namespace cq::wl
