// Checking-accounts workload: the epsilon-query example of Sections 3.2
// and 5.3 — "SELECT SUM(amount) FROM CheckingAccounts" with the trigger
// |Deposits − Withdrawals| >= 0.5M. Deposits and withdrawals are modeled
// as insertions into / deletions from a CheckingAccounts movements table,
// so the trigger's differential form reads only ΔCheckingAccounts.
#pragma once

#include <string>
#include <vector>

#include "catalog/database.hpp"
#include "common/rng.hpp"

namespace cq::wl {

struct AccountsConfig {
  std::size_t accounts = 500;
  std::int64_t initial_balance_lo = 1000;
  std::int64_t initial_balance_hi = 500000;
  std::int64_t movement_lo = 10;
  std::int64_t movement_hi = 20000;
};

/// Schema: (account INT, branch STRING, amount INT). Each row is one
/// account's balance; deposits/withdrawals modify the amount, opening and
/// closing accounts insert/delete rows.
class AccountsWorkload {
 public:
  AccountsWorkload(cat::Database& db, std::string table, const AccountsConfig& config,
                   common::Rng& rng);

  /// Apply `movements` random deposits/withdrawals (modifications). A
  /// withdrawal never takes an account below zero. Returns the net amount
  /// moved (deposits minus withdrawals), so tests can predict the epsilon
  /// trigger's drift.
  std::int64_t step(std::size_t movements, std::size_t batch = 4);

  /// Open one account with the given balance; returns its tid.
  rel::TupleId open_account(std::int64_t balance);

  /// Close a random account; returns its final balance (0 if none open).
  std::int64_t close_random_account();

  [[nodiscard]] const std::string& table() const noexcept { return table_; }

 private:
  cat::Database& db_;
  std::string table_;
  AccountsConfig config_;
  common::Rng& rng_;
  std::vector<rel::TupleId> open_;
  std::int64_t next_account_ = 0;
};

}  // namespace cq::wl
