// Quickstart: the paper's running example, end to end.
//
// Reproduces Example 1 (Section 4.1) — a transaction that inserts MAC,
// modifies DEC, and deletes QLI — and Example 2 (Section 4.2) — the
// continual query σ_price>120(Stocks) evaluated differentially — and shows
// that the DRA's answer matches complete re-evaluation.
#include <iostream>

#include "catalog/database.hpp"
#include "catalog/transaction.hpp"
#include "cq/dra.hpp"
#include "cq/propagate.hpp"
#include "query/parser.hpp"

int main() {
  using cq::rel::Value;
  using cq::rel::ValueType;

  // --- 1. An information source: the Stocks relation -------------------
  cq::cat::Database db;
  db.create_table("Stocks", cq::rel::Schema::of({{"name", ValueType::kString},
                                                 {"price", ValueType::kInt}}));
  auto load = db.begin();
  const auto dec = load.insert("Stocks", {Value("DEC"), Value(150)});
  const auto qli = load.insert("Stocks", {Value("QLI"), Value(145)});
  load.insert("Stocks", {Value("IBM"), Value(80)});
  load.commit();

  // --- 2. A continual query (installed: initial complete execution) ----
  const auto query = cq::qry::parse_query("SELECT * FROM Stocks WHERE price > 120");
  const cq::rel::Relation initial = cq::core::recompute(query, db);
  std::cout << "Initial execution E0 of  " << query.to_string() << "\n"
            << initial.to_string() << "\n";
  const cq::common::Timestamp t0 = db.clock().now();

  // --- 3. The paper's transaction T (Example 1) ------------------------
  auto txn = db.begin();
  txn.insert("Stocks", {Value("MAC"), Value(117)});
  txn.modify("Stocks", dec, {Value("DEC"), Value(149)});
  txn.erase("Stocks", qli);
  txn.commit();
  std::cout << "After transaction T, the differential relation holds:\n"
            << db.delta("Stocks").to_string() << "\n";
  std::cout << "insertions(ΔStocks):\n"
            << db.delta("Stocks").insertions(t0).to_string() << "\n";
  std::cout << "deletions(ΔStocks):\n"
            << db.delta("Stocks").deletions(t0).to_string() << "\n";

  // --- 4. Differential re-evaluation (the DRA, Algorithm 1) ------------
  cq::core::DraStats stats;
  const cq::core::DiffResult delta =
      cq::core::dra_differential(query, db, t0, nullptr, {}, &stats);
  std::cout << "DRA result (" << stats.changed_relations << " changed relation, "
            << stats.terms_evaluated << " truth-table term, " << stats.delta_rows_read
            << " delta rows read):\n"
            << delta.to_string() << "\n";

  // --- 5. Functional equivalence with complete re-evaluation -----------
  const cq::core::DiffResult oracle = cq::core::propagate(query, db, initial);
  std::cout << "Propagate (recompute-from-scratch) agrees: "
            << (delta.equivalent(oracle) ? "yes" : "NO — BUG") << "\n";

  // --- 6. The complete-result formula of Section 4.2 -------------------
  const cq::rel::Relation next = cq::core::apply_diff(initial, delta.consolidated());
  std::cout << "E1 = E0 − deletions ∪ insertions:\n" << next.to_string();
  return 0;
}
