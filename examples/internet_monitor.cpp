// Internet-scale information monitoring (the paper's motivating scenario,
// Sections 1 and 5.5): three autonomous, heterogeneous sources — a
// relational stock exchange, a flat-file analyst-notes store observed by a
// translator, and an append-only news feed — attached to a DIOM mediator.
// The mediator mirrors each source locally by shipping differential
// relations over a simulated network, and continual queries (including one
// joining two different sources) run client-side via the DRA.
#include <iostream>

#include "catalog/transaction.hpp"
#include "common/observability.hpp"
#include "common/rng.hpp"
#include "diom/feed_source.hpp"
#include "diom/file_source.hpp"
#include "diom/mediator.hpp"
#include "workload/stocks.hpp"

int main() {
  using namespace cq;
  using rel::Value;
  using rel::ValueType;

  common::Rng rng(99);
  common::obs::set_enabled(true);  // trace the whole run

  // --- autonomous producers -------------------------------------------
  cat::Database exchange;  // a relational DBMS somewhere on the net
  wl::StocksWorkload market(exchange, "Stocks", {.symbols = 1500}, rng);

  auto notes = std::make_shared<diom::FileSource>(  // a flat-file store
      "Notes", rel::Schema::of({{"sym", ValueType::kString},
                                {"rating", ValueType::kInt}}));
  for (int i = 0; i < 200; ++i) {
    notes->write_line(wl::StocksWorkload::symbol_name(rng.index(1500)) + "," +
                      std::to_string(rng.uniform_int(0, 10)));
  }

  auto wire_news = std::make_shared<diom::FeedSource>(  // an append-only feed
      "News", rel::Schema::of({{"sym", ValueType::kString},
                               {"headline", ValueType::kString}}));

  // --- the client-side mediator ----------------------------------------
  diom::Network net;
  net.set_default_link({.latency_ms = 25.0, .bandwidth_bytes_per_ms = 1000.0});
  diom::Mediator client("workstation", &net);
  client.attach(std::make_shared<diom::RelationalSource>("Stocks", exchange, "Stocks"));
  client.attach(notes);
  client.attach(wire_news);
  std::cout << "Attached " << client.source_count()
            << " heterogeneous sources; initial load shipped "
            << net.total_bytes() << " bytes\n\n";

  // --- continual queries over the mirror -------------------------------
  auto picks_sink = std::make_shared<core::CollectingSink>();
  client.manager().install(
      core::CqSpec::from_sql(
          "hot-picks",
          "SELECT s.symbol, s.price, n.rating FROM Stocks s, Notes n "
          "WHERE s.symbol = n.sym AND n.rating > 7 AND s.price < 50",
          core::triggers::on_change(), nullptr, core::DeliveryMode::kComplete),
      picks_sink);

  auto news_sink = std::make_shared<core::CollectingSink>();
  client.manager().install(
      core::CqSpec::from_sql("sym1-news",
                             "SELECT * FROM News WHERE sym = 'SYM000001'",
                             core::triggers::on_change()),
      news_sink);

  // --- the world changes; the client periodically synchronizes ---------
  for (int hour = 1; hour <= 8; ++hour) {
    market.step(/*trades=*/300, /*listings=*/10, /*delistings=*/8);
    notes->write_line(wl::StocksWorkload::symbol_name(rng.index(1500)) + "," +
                      std::to_string(rng.uniform_int(0, 10)));
    wire_news->publish({Value(wl::StocksWorkload::symbol_name(rng.index(3))),
                        Value("headline at hour " + std::to_string(hour))});

    const std::uint64_t before = net.total_bytes();
    const std::size_t applied = client.sync();
    client.manager().poll();
    client.manager().collect_garbage();

    const auto& picks = picks_sink->notifications().back();
    std::cout << "hour " << hour << ": pulled " << applied << " delta rows ("
              << (net.total_bytes() - before) << " bytes); hot-picks |result|="
              << picks.complete->size() << ", news notifications="
              << news_sink->notifications().size() - 1 << "\n";
  }

  // --- the paper's network argument, measured ---------------------------
  const std::uint64_t incremental_total = net.total_bytes();
  net.reset();
  client.ship_snapshots();
  std::cout << "\nBytes if every refresh re-shipped full snapshots (one sync): "
            << net.total_bytes() << "\n";
  std::cout << "Bytes actually shipped across all 8 incremental syncs + load: "
            << incremental_total << "\n";
  std::cout << "Simulated transfer time spent: " << net.total_transfer_ms()
            << " ms (per-link latency " << 25.0 << " ms)\n";

  // --- observability dump ----------------------------------------------
  const char* trace_path = "trace_internet_monitor.json";
  common::obs::global().traces().write_chrome_trace(trace_path);
  std::cout << "\nWrote " << common::obs::global().traces().size()
            << " spans to " << trace_path
            << " (load in chrome://tracing or https://ui.perfetto.dev)\n";
  std::cout << "Stats JSON:\n"
            << common::obs::export_json(
                   client.manager().metrics(),
                   common::obs::global().histogram_snapshot(),
                   {client.manager().stats_section(), client.stats_section()})
            << "\n";
  return 0;
}
