// Stock-market monitoring: several continual queries with different
// trigger conditions and delivery modes over a live market, including the
// intro's Q3-style price-band query, driven by the CQ manager with eager
// (per-commit) trigger checking and periodic garbage collection.
#include <iostream>

#include "common/rng.hpp"
#include "cq/manager.hpp"
#include "workload/stocks.hpp"

int main() {
  using namespace cq;

  common::Rng rng(42);
  cat::Database db;
  wl::StocksWorkload market(db, "Stocks", {.symbols = 2000}, rng);
  core::CqManager manager(db);

  // CQ 1: differential watch on cheap stocks, re-run on every relevant
  // commit (eager strategy, Section 5.3 choice 1).
  auto cheap_sink = std::make_shared<core::CollectingSink>();
  manager.install(
      core::CqSpec::from_sql("cheap-stocks",
                             "SELECT symbol, price FROM Stocks WHERE price < 15",
                             core::triggers::on_change()),
      cheap_sink);

  // CQ 2: complete result of a band query, refreshed only when at least
  // 500 tuples changed (an epsilon spec on update volume).
  auto band_sink = std::make_shared<core::CollectingSink>();
  manager.install(
      core::CqSpec::from_sql(
          "mid-band", "SELECT symbol, price FROM Stocks WHERE price BETWEEN 90 AND 110",
          core::triggers::change_count(500), nullptr, core::DeliveryMode::kComplete),
      band_sink);

  // CQ 3: deletion notification — tell me when big-volume listings vanish
  // (the kind of query append-only continuous queries cannot express).
  auto delist_sink = std::make_shared<core::CollectingSink>();
  manager.install(
      core::CqSpec::from_sql("delisted",
                             "SELECT symbol FROM Stocks WHERE volume > 50000",
                             core::triggers::on_change(), nullptr,
                             core::DeliveryMode::kDeletionsOnly),
      delist_sink);

  std::cout << "Installed " << manager.active_count() << " continual queries\n\n";

  // --- run ten market sessions -----------------------------------------
  for (int session = 1; session <= 10; ++session) {
    market.step(/*trades=*/400, /*listings=*/20, /*delistings=*/15);
    manager.poll();
    const std::size_t reclaimed = manager.collect_garbage();

    std::cout << "session " << session << ": ";
    const auto& cheap = cheap_sink->notifications().back();
    std::cout << "cheap Δ+" << cheap.delta.inserted.size() << "/-"
              << cheap.delta.deleted.size();
    const auto& band = band_sink->notifications().back();
    std::cout << "  band |result|=" << (band.complete ? band.complete->size() : 0)
              << " (exec #" << band.sequence << ")";
    const auto& delist = delist_sink->notifications().back();
    std::cout << "  delisted=" << delist.delta.deleted.size();
    std::cout << "  gc=" << reclaimed << " rows\n";
  }

  std::cout << "\nWork counters across all executions:\n"
            << manager.metrics().to_string();
  std::cout << "Last DRA: " << manager.last_dra_stats().changed_relations
            << " changed relations, " << manager.last_dra_stats().terms_evaluated
            << " terms, " << manager.last_dra_stats().delta_rows_read
            << " delta rows read\n";
  return 0;
}
