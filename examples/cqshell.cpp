// cqshell — an interactive shell over the continual-query engine.
//
// Lets you create tables and indexes, run updates, issue one-shot queries,
// install continual queries with triggers, advance the virtual clock, poll
// the CQ manager, and inspect delta logs / plans / staleness. Reads
// commands from stdin (one per line; '#' starts a comment), so it works
// both interactively and with piped scripts:
//
//   build/examples/cqshell <<'EOF'
//   CREATE TABLE Stocks (name STRING, price INT)
//   INSERT INTO Stocks VALUES ('DEC', 150)
//   INSTALL watch TRIGGER ONCHANGE AS SELECT * FROM Stocks WHERE price > 120
//   INSERT INTO Stocks VALUES ('MAC', 130)
//   POLL
//   EOF
//
// Type HELP for the command list.
#include <unistd.h>

#include <iostream>
#include <map>
#include <sstream>
#include <string>

#include "catalog/database.hpp"
#include "catalog/transaction.hpp"
#include "common/error.hpp"
#include "common/introspect_server.hpp"
#include "common/lock_profile.hpp"
#include "common/sync.hpp"
#include "common/observability.hpp"
#include "common/prometheus.hpp"
#include "cq/manager.hpp"
#include "persist/snapshot.hpp"
#include "query/evaluate.hpp"
#include "query/lexer.hpp"
#include "query/parser.hpp"

namespace {

using namespace cq;

const char* kHelp = R"(commands:
  CREATE TABLE <name> (<col> <INT|DOUBLE|STRING|BOOL>, ...)
  CREATE INDEX <name> ON <table> (<col>[, <col>...])
  INSERT INTO <table> VALUES (<literal>, ...)
  UPDATE <table> SET <col> = <literal>[, ...] WHERE <predicate>
  DELETE FROM <table> WHERE <predicate>
  SELECT ...                          one-shot query
  INSTALL <name> [MODE DIFF|COMPLETE|INSERTIONS|DELETIONS]
          TRIGGER ONCHANGE | PERIODIC <ticks> | COUNT <n>
                | DRIFT <table> <col> <epsilon>
          [STOP AFTER <n>]
          AS SELECT ...               install a continual query
  POLL                                check triggers, run fired CQs
  ADVANCE <ticks>                     move the virtual clock forward
  EXPLAIN <cq-name>                   plan + pending deltas + staleness
  EXPLAIN SELECT ...                  run the query; plan tree with
                                      estimated vs. actual row counts
  EXPLAIN NOTIFICATION <cq> [n]       retained lineage for the CQ's last n
                                      notifications: each delivered row and
                                      the base delta rows it derives from
  LINEAGE ON [k] | OFF                collect notification lineage (retain
                                      the last k notifications per CQ;
                                      default 8); OFF keeps retained records
  STATS [JSON]                        engine counters, latency histograms,
                                      per-CQ statistics (JSON: one document)
  STATS RESET                         zero counters, histograms, gauges and
                                      per-CQ statistics
  SERVE <port>                        start the introspection HTTP server
                                      (/metrics /stats /healthz /trace
                                      /events /lineage /profile); port 0
                                      picks one
  EVENTS [n]                          last n journal events as NDJSON
                                      (default 20; needs TRACE ON)
  TRACE ON | OFF | DUMP <path>        span tracing (DUMP writes a
                                      chrome://tracing JSON file)
  TRACE SLOWEST [n]                   n slowest retained commit traces
                                      (default: all; needs TRACE ON)
  THREADS <n>                         evaluate CQs on n threads (1 = serial)
  PROFILE ON | OFF | SHOW             lock-contention profiling; SHOW prints
                                      the per-site wait/hold table
  STALENESS <cq-name>
  REMOVE <cq-name>
  GC                                  collect delta garbage
  SNAPSHOT <path>                     persist database + CQ manifest
  RESTORE <path>                      restart from a snapshot (re-installs
                                      the CQs recorded at INSTALL time)
  TABLES | SHOW <table> | DELTA <table> | CQS
  HELP | QUIT)";

class Shell {
 public:
  Shell()
      : db_(std::make_unique<cat::Database>()),
        manager_(std::make_unique<core::CqManager>(*db_)) {}

  /// Process one command line; returns false on QUIT. Serialized against
  /// the introspection server's handlers via mu_.
  bool handle(const std::string& line) {
    const std::string trimmed = trim(line);
    if (trimmed.empty() || trimmed[0] == '#') return true;
    const common::LockGuard lock(mu_);
    try {
      return dispatch(trimmed);
    } catch (const common::Error& e) {
      std::cout << "error: " << e.what() << "\n";
      return true;
    }
  }

 private:
  static std::string trim(const std::string& s) {
    const auto b = s.find_first_not_of(" \t\r\n");
    if (b == std::string::npos) return "";
    const auto e = s.find_last_not_of(" \t\r\n");
    return s.substr(b, e - b + 1);
  }

  static std::string upper_word(const std::string& s, std::size_t* rest = nullptr) {
    std::size_t i = 0;
    while (i < s.size() && !std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::string w = s.substr(0, i);
    for (auto& c : w) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    if (rest != nullptr) *rest = i;
    return w;
  }

  bool dispatch(const std::string& line) {
    std::size_t rest = 0;
    const std::string cmd = upper_word(line, &rest);
    const std::string args = line.substr(rest);

    if (cmd == "QUIT" || cmd == "EXIT") return false;
    if (cmd == "HELP") {
      std::cout << kHelp << "\n";
    } else if (cmd == "CREATE") {
      do_create(args);
    } else if (cmd == "INSERT") {
      do_insert(args);
    } else if (cmd == "UPDATE") {
      do_update(args);
    } else if (cmd == "DELETE") {
      do_delete(args);
    } else if (cmd == "SELECT") {
      const rel::Relation out = qry::evaluate(qry::parse_query(line), *db_);
      std::cout << out.to_string();
    } else if (cmd == "INSTALL") {
      do_install(args);
    } else if (cmd == "POLL") {
      std::cout << manager_->poll() << " CQ(s) executed\n";
    } else if (cmd == "ADVANCE") {
      auto& clock = dynamic_cast<common::VirtualClock&>(db_->clock());
      clock.advance(common::Duration(std::stoll(args)));
      std::cout << "clock now at t=" << db_->clock().now().to_string() << "\n";
    } else if (cmd == "EXPLAIN") {
      do_explain(trim(args));
    } else if (cmd == "STATS") {
      const std::string verb = upper_word(trim(args));
      if (verb == "RESET") {
        do_stats_reset();
      } else {
        do_stats(verb == "JSON");
      }
    } else if (cmd == "SERVE") {
      do_serve(trim(args));
    } else if (cmd == "EVENTS") {
      do_events(trim(args));
    } else if (cmd == "LINEAGE") {
      do_lineage(trim(args));
    } else if (cmd == "TRACE") {
      do_trace(trim(args));
    } else if (cmd == "THREADS") {
      const auto n = parse_count(trim(args), "THREADS");
      manager_->set_parallelism(static_cast<std::size_t>(n));
      std::cout << "evaluating on " << manager_->parallelism() << " thread(s)\n";
    } else if (cmd == "PROFILE") {
      do_profile(trim(args));
    } else if (cmd == "STALENESS") {
      const auto s = manager_->cq(handle_of(trim(args))).staleness(*db_);
      std::cout << s.pending_changes << " pending / " << s.relevant_changes
                << " relevant changes, age " << s.age.ticks() << " ticks\n";
    } else if (cmd == "REMOVE") {
      manager_->remove(handle_of(trim(args)));
      std::cout << "removed\n";
    } else if (cmd == "SNAPSHOT") {
      persist::save_snapshot_file(trim(args), *db_, *manager_);
      std::cout << "snapshot written to " << trim(args) << "\n";
    } else if (cmd == "RESTORE") {
      do_restore(trim(args));
    } else if (cmd == "GC") {
      std::cout << manager_->collect_garbage() << " delta rows reclaimed\n";
    } else if (cmd == "TABLES") {
      for (const auto& t : db_->table_names()) {
        std::cout << t << " " << db_->table(t).schema().to_string() << " ["
                  << db_->table(t).size() << " rows, Δ " << db_->delta(t).size()
                  << " rows]\n";
      }
    } else if (cmd == "SHOW") {
      std::cout << db_->table(trim(args)).to_string(20);
    } else if (cmd == "DELTA") {
      std::cout << db_->delta(trim(args)).to_string(20);
    } else if (cmd == "CQS") {
      for (const auto h : manager_->handles()) {
        const auto& cq = manager_->cq(h);
        std::cout << cq.name() << ": " << cq.spec().query.to_string() << "  [trigger "
                  << cq.spec().trigger->describe() << ", " << cq.executions()
                  << " executions]\n";
      }
    } else {
      std::cout << "unknown command '" << cmd << "' (try HELP)\n";
    }
    return true;
  }

  // EXPLAIN SELECT ... runs the statement and prints the plan tree with
  // estimated vs. actual row counts; EXPLAIN <cq-name> keeps the original
  // CQ inspection (plan + pending deltas + staleness).
  void do_explain(const std::string& args) {
    std::size_t rest = 0;
    const std::string first = upper_word(args, &rest);
    if (first == "SELECT") {
      const qry::QueryExplain ex = qry::explain_query(qry::parse_query(args), *db_);
      std::cout << ex.to_string();
      std::cout << ex.result.size() << " row(s)\n";
      return;
    }
    if (first == "NOTIFICATION") {
      std::size_t name_end = 0;
      const std::string tail = trim(args.substr(rest));
      const std::string name = tail.substr(0, tail.find_first_of(" \t"));
      std::size_t n = core::LineageStore::kDefaultRetention;
      if (name.size() < tail.size()) {
        name_end = tail.find_first_not_of(" \t", name.size());
        n = static_cast<std::size_t>(
            parse_count(tail.substr(name_end), "EXPLAIN NOTIFICATION"));
      }
      if (name.empty()) {
        throw common::ParseError("EXPLAIN NOTIFICATION <cq-name> [n]");
      }
      std::cout << manager_->lineage().explain(*db_, name, n);
      return;
    }
    std::cout << manager_->cq(handle_of(args)).explain(*db_);
  }

  // LINEAGE ON [k] | OFF — toggle lineage collection. ON also sets the
  // per-CQ retention ring depth; OFF stops collecting but keeps whatever
  // records are already retained (still inspectable via /lineage and
  // EXPLAIN NOTIFICATION).
  void do_lineage(const std::string& args) {
    std::size_t rest = 0;
    const std::string verb = upper_word(args, &rest);
    if (verb == "ON") {
      std::size_t k = core::LineageStore::kDefaultRetention;
      const std::string tail = trim(args.substr(rest));
      if (!tail.empty()) {
        k = static_cast<std::size_t>(parse_count(tail, "LINEAGE ON"));
        if (k == 0) throw common::InvalidArgument("LINEAGE ON needs k >= 1");
      }
      manager_->set_lineage(true, k);
      std::cout << "lineage on (retaining last " << k
                << " notification(s) per CQ)\n";
    } else if (verb == "OFF") {
      manager_->set_lineage(false);
      std::cout << "lineage off (retained records kept)\n";
    } else {
      throw common::ParseError("LINEAGE ON [k] | OFF");
    }
  }

  void do_stats(bool as_json) {
    if (as_json) {
      std::cout << common::obs::export_json(manager_->metrics(),
                                            common::obs::global().histogram_snapshot(),
                                            {manager_->stats_section()})
                << "\n";
      return;
    }
    const std::string counters = manager_->metrics().to_string();
    std::cout << "counters:\n" << (counters.empty() ? "  (none)\n" : counters);
    for (const auto& [name, h] : common::obs::global().histogram_snapshot()) {
      std::cout << "hist " << name << ": " << h.to_string() << "\n";
    }
    for (const auto& [name, s] : manager_->cq_stats()) {
      std::cout << "cq " << name << ": " << s.executions << " execution(s), "
                << s.trigger_checks << " trigger check(s) (" << s.fired << " fired, "
                << s.suppressed << " suppressed), " << s.delta_rows_consumed
                << " delta row(s) consumed, " << s.rows_delivered
                << " row(s) delivered, last exec " << s.last_exec_ns / 1000 << " us"
                << (s.finished ? " [finished]" : "") << "\n";
    }
  }

  void do_stats_reset() {
    manager_->reset_stats();
    common::obs::global().reset();
    std::cout << "stats reset\n";
  }

  static std::uint64_t parse_count(const std::string& args, const char* what) {
    if (args.find_first_not_of("0123456789") != std::string::npos) {
      throw common::InvalidArgument(std::string("expected a number for ") +
                                    what + ", got '" + args + "'");
    }
    try {
      return std::stoull(args);
    } catch (const std::exception&) {
      throw common::InvalidArgument(std::string("expected a number for ") +
                                    what + ", got '" + args + "'");
    }
  }

  void do_events(const std::string& args) {
    std::size_t n = 20;
    if (!args.empty()) n = static_cast<std::size_t>(parse_count(args, "EVENTS"));
    const std::string out = common::obs::global().events().to_ndjson(n);
    if (out.empty()) {
      std::cout << "(no events; enable the journal with TRACE ON)\n";
    } else {
      std::cout << out;
    }
  }

  // SERVE <port>: expose /metrics /stats /healthz /trace /events /profile
  // on 127.0.0.1. Handlers run on the server thread and take mu_, so scrapes
  // serialize with the command loop. The shell has no attached sources, so
  // /healthz always reports ok.
  void do_serve(const std::string& args) {
    if (server_.running()) {
      std::cout << "already serving on port " << server_.port() << "\n";
      return;
    }
    std::uint16_t port = 0;
    if (!args.empty()) {
      const std::uint64_t parsed = parse_count(args, "SERVE");
      if (parsed > 65535) {
        throw common::InvalidArgument("port out of range: " + args);
      }
      port = static_cast<std::uint16_t>(parsed);
    }
    namespace obs = common::obs;
    server_.route("/metrics", [this](const obs::HttpRequest&) {
      const common::LockGuard lock(mu_);
      db_->refresh_resource_gauges();
      obs::HttpResponse resp;
      resp.content_type = "text/plain; version=0.0.4; charset=utf-8";
      resp.body = obs::render_prometheus(manager_->metrics(), obs::global(),
                                         {manager_->prometheus_section()});
      return resp;
    });
    server_.route("/stats", [this](const obs::HttpRequest&) {
      const common::LockGuard lock(mu_);
      return obs::HttpResponse::json(
          obs::export_json(manager_->metrics(), obs::global().histogram_snapshot(),
                           {manager_->stats_section(), obs::events_section()}));
    });
    server_.route("/healthz", [this](const obs::HttpRequest&) {
      const common::LockGuard lock(mu_);
      obs::JsonWriter w;
      w.begin_object();
      w.kv("status", "ok");
      w.kv("active_cqs", static_cast<std::uint64_t>(manager_->active_count()));
      w.end_object();
      return obs::HttpResponse::json(w.str());
    });
    server_.route("/trace", [this](const obs::HttpRequest& req) {
      const common::LockGuard lock(mu_);
      return obs::HttpResponse::json(
          obs::global().traces().to_chrome_json(req.query_u64("trace_id", 0)));
    });
    server_.route("/profile", [this](const obs::HttpRequest&) {
      const common::LockGuard lock(mu_);
      return obs::HttpResponse::json(obs::export_profile_json());
    });
    server_.route("/events", [this](const obs::HttpRequest& req) {
      const common::LockGuard lock(mu_);
      obs::HttpResponse resp;
      resp.content_type = "application/x-ndjson; charset=utf-8";
      resp.body = obs::global().events().to_ndjson(
          static_cast<std::size_t>(req.query_u64("n", 100)),
          req.query_u64("since", 0));
      return resp;
    });
    server_.route("/lineage", [this](const obs::HttpRequest& req) {
      const common::LockGuard lock(mu_);
      return obs::HttpResponse::json(manager_->lineage().to_json(
          req.query_str("cq"),
          static_cast<std::size_t>(
              req.query_u64("n", core::LineageStore::kDefaultRetention))));
    });
    server_.route("/lockgraph", [](const obs::HttpRequest& req) {
      // Atomics-only on the far side: no engine lock, by design.
      if (req.query_str("format") == "dot") {
        return obs::HttpResponse::text(common::lockorder::to_dot());
      }
      return obs::HttpResponse::json(common::lockorder::to_json());
    });
    server_.start(port);
    std::cout << "serving introspection on http://127.0.0.1:" << server_.port()
              << " (/metrics /stats /healthz /trace /events /lineage /profile"
                 " /lockgraph)\n";
  }

  void do_trace(const std::string& args) {
    std::size_t rest = 0;
    const std::string verb = upper_word(args, &rest);
    if (verb == "ON") {
      common::obs::set_enabled(true);
      std::cout << "tracing on\n";
    } else if (verb == "OFF") {
      common::obs::set_enabled(false);
      std::cout << "tracing off\n";
    } else if (verb == "DUMP") {
      const std::string path = trim(args.substr(rest));
      if (path.empty()) throw common::ParseError("TRACE DUMP <path>");
      common::obs::global().traces().write_chrome_trace(path);
      std::cout << "wrote " << common::obs::global().traces().size()
                << " span(s) to " << path << "\n";
    } else if (verb == "SLOWEST") {
      do_trace_slowest(trim(args.substr(rest)));
    } else {
      throw common::ParseError("TRACE ON | OFF | DUMP <path> | SLOWEST [n]");
    }
  }

  // TRACE SLOWEST [n]: the tail-retained commit traces, slowest first,
  // with their per-phase span breakdown. Fetch them through /trace?trace_id=
  // for the full chrome://tracing view of one commit.
  void do_trace_slowest(const std::string& args) {
    std::size_t n = ~std::size_t{0};
    if (!args.empty()) n = static_cast<std::size_t>(parse_count(args, "SLOWEST"));
    const auto slowest = common::obs::global().traces().slowest();
    if (slowest.empty()) {
      std::cout << "(no retained commit traces; enable with TRACE ON and commit)\n";
      return;
    }
    std::size_t shown = 0;
    for (const auto& t : slowest) {
      if (shown++ == n) break;
      std::cout << "trace " << t.trace_id << "  " << t.dur_ns / 1000 << " us  ["
                << (t.label.empty() ? "commit" : t.label) << "]  "
                << t.events.size() << " span(s)\n";
      // Aggregate child spans by name so a 64-CQ commit prints a handful of
      // phase rows, not hundreds of eval.batch lines.
      std::map<std::string, std::pair<std::uint64_t, std::uint64_t>> phases;
      for (const auto& e : t.events) {
        auto& [count, total_ns] = phases[e.name];
        ++count;
        total_ns += e.dur_ns;
      }
      for (const auto& [name, agg] : phases) {
        std::cout << "  " << name << ": " << agg.first << " span(s), "
                  << agg.second / 1000 << " us total\n";
      }
    }
  }

  // PROFILE ON | OFF | SHOW: lock-contention profiling over the named
  // cq::Mutex sites (pool, trace_ring, cq_stats, ...).
  void do_profile(const std::string& args) {
    namespace lockprof = common::lockprof;
    const std::string verb = upper_word(args);
    if (verb == "ON") {
      lockprof::set_enabled(true);
      std::cout << "lock profiling on\n";
    } else if (verb == "OFF") {
      lockprof::set_enabled(false);
      std::cout << "lock profiling off\n";
    } else if (verb == "SHOW") {
      const std::size_t n = lockprof::site_count();
      if (n == 0) {
        std::cout << "(no profiled acquisitions; enable with PROFILE ON)\n";
        return;
      }
      for (std::size_t i = 0; i < n; ++i) {
        const auto& s = lockprof::site(i);
        const char* name = s.name.load(std::memory_order_acquire);
        std::cout << (name != nullptr ? name : "?") << ": "
                  << s.acquisitions.load(std::memory_order_relaxed)
                  << " acquisition(s), "
                  << s.contended.load(std::memory_order_relaxed) << " contended, wait "
                  << s.wait_ns.load(std::memory_order_relaxed) / 1000 << " us, hold "
                  << s.hold_ns.load(std::memory_order_relaxed) / 1000 << " us\n";
        if (s.wait_us.count() > 0) {
          std::cout << "  wait_us " << s.wait_us.to_string() << "\n";
        }
        if (s.hold_us.count() > 0) {
          std::cout << "  hold_us " << s.hold_us.to_string() << "\n";
        }
      }
    } else {
      throw common::ParseError("PROFILE ON | OFF | SHOW");
    }
  }

  // CREATE TABLE t (a INT, b STRING) | CREATE INDEX i ON t (a, b)
  void do_create(const std::string& args) {
    std::size_t rest = 0;
    const std::string what = upper_word(args, &rest);
    const std::string tail = args.substr(rest);
    const auto open = tail.find('(');
    if (open == std::string::npos || tail.back() != ')') {
      throw common::ParseError("CREATE: expected (...) list");
    }
    const std::string inner = tail.substr(open + 1, tail.size() - open - 2);

    if (what == "TABLE") {
      const std::string name = trim(tail.substr(0, open));
      std::vector<rel::Attribute> attrs;
      std::istringstream items(inner);
      std::string item;
      while (std::getline(items, item, ',')) {
        std::istringstream pair(trim(item));
        std::string col;
        std::string type;
        pair >> col >> type;
        for (auto& c : type) c = static_cast<char>(std::toupper(c));
        rel::ValueType vt;
        if (type == "INT") {
          vt = rel::ValueType::kInt;
        } else if (type == "DOUBLE") {
          vt = rel::ValueType::kDouble;
        } else if (type == "STRING") {
          vt = rel::ValueType::kString;
        } else if (type == "BOOL") {
          vt = rel::ValueType::kBool;
        } else {
          throw common::ParseError("CREATE TABLE: unknown type '" + type + "'");
        }
        attrs.push_back({col, vt});
      }
      db_->create_table(name, rel::Schema(std::move(attrs)));
      std::cout << "created table " << name << "\n";
    } else if (what == "INDEX") {
      // INDEX <name> ON <table> (cols)
      std::istringstream head(tail.substr(0, open));
      std::string index_name;
      std::string on;
      std::string table;
      head >> index_name >> on >> table;
      std::vector<std::string> cols;
      std::istringstream items(inner);
      std::string item;
      while (std::getline(items, item, ',')) cols.push_back(trim(item));
      db_->create_index(table, index_name, cols);
      std::cout << "created index " << index_name << " on " << table << "\n";
    } else {
      throw common::ParseError("CREATE: expected TABLE or INDEX");
    }
  }

  static rel::Value token_to_value(const qry::Token& t) {
    switch (t.kind) {
      case qry::TokenKind::kInteger: return rel::Value(t.integer);
      case qry::TokenKind::kDouble: return rel::Value(t.real);
      case qry::TokenKind::kString: return rel::Value(t.text);
      case qry::TokenKind::kKeyword:
        if (t.text == "NULL") return rel::Value::null();
        if (t.text == "TRUE") return rel::Value(true);
        if (t.text == "FALSE") return rel::Value(false);
        [[fallthrough]];
      default:
        throw common::ParseError("expected a literal, got '" + t.text + "'");
    }
  }

  // INSERT INTO t VALUES (1, 'x', ...)
  void do_insert(const std::string& args) {
    std::size_t rest = 0;
    if (upper_word(args, &rest) != "INTO") throw common::ParseError("expected INTO");
    const std::string tail = args.substr(rest);
    std::size_t rest2 = 0;
    std::istringstream head(tail);
    std::string table;
    head >> table;
    rest2 = tail.find(table) + table.size();
    std::string values_part = trim(tail.substr(rest2));
    if (upper_word(values_part, &rest) != "VALUES") {
      throw common::ParseError("expected VALUES");
    }
    values_part = trim(values_part.substr(rest));
    if (values_part.empty() || values_part.front() != '(' || values_part.back() != ')') {
      throw common::ParseError("expected (literals)");
    }
    std::vector<rel::Value> values;
    for (const auto& tok :
         qry::tokenize(values_part.substr(1, values_part.size() - 2))) {
      if (tok.kind == qry::TokenKind::kEnd || tok.is_symbol(",")) continue;
      if (tok.is_symbol("-")) throw common::ParseError("negate literals inline: -5");
      values.push_back(token_to_value(tok));
    }
    const auto tid = db_->insert(table, std::move(values));
    std::cout << "inserted tid " << tid.to_string() << "\n";
  }

  [[nodiscard]] std::vector<rel::TupleId> matching_tids(const std::string& table,
                                                        const std::string& predicate) {
    const alg::ExprPtr pred = qry::parse_predicate(predicate);
    const rel::Relation& base = db_->table(table);
    std::vector<rel::TupleId> out;
    for (const auto& row : base.rows()) {
      if (pred->eval_bool(row, base.schema())) out.push_back(row.tid());
    }
    return out;
  }

  // DELETE FROM t WHERE pred
  void do_delete(const std::string& args) {
    std::size_t rest = 0;
    if (upper_word(args, &rest) != "FROM") throw common::ParseError("expected FROM");
    std::istringstream head(args.substr(rest));
    std::string table;
    head >> table;
    const auto where_at = args.find(" WHERE ");
    const auto where_at2 = args.find(" where ");
    const auto at = where_at != std::string::npos ? where_at : where_at2;
    if (at == std::string::npos) {
      throw common::ParseError("DELETE requires a WHERE clause");
    }
    const auto tids = matching_tids(table, args.substr(at + 7));
    auto txn = db_->begin();
    for (const auto tid : tids) txn.erase(table, tid);
    txn.commit();
    std::cout << "deleted " << tids.size() << " row(s)\n";
  }

  // UPDATE t SET a = 1, b = 'x' WHERE pred
  void do_update(const std::string& args) {
    std::istringstream head(args);
    std::string table;
    head >> table;
    const auto set_at = args.find(" SET ");
    const auto set_at2 = args.find(" set ");
    const auto sat = set_at != std::string::npos ? set_at : set_at2;
    const auto where_at = args.find(" WHERE ");
    const auto where_at2 = args.find(" where ");
    const auto wat = where_at != std::string::npos ? where_at : where_at2;
    if (sat == std::string::npos || wat == std::string::npos || wat < sat) {
      throw common::ParseError("UPDATE <t> SET <col>=<lit>[,...] WHERE <pred>");
    }
    const std::string sets = args.substr(sat + 5, wat - sat - 5);
    const std::string predicate = args.substr(wat + 7);

    const rel::Schema& schema = db_->table(table).schema();
    std::vector<std::pair<std::size_t, rel::Value>> assignments;
    std::istringstream items(sets);
    std::string item;
    while (std::getline(items, item, ',')) {
      const auto eq = item.find('=');
      if (eq == std::string::npos) throw common::ParseError("SET expects col = literal");
      const std::string col = trim(item.substr(0, eq));
      const auto toks = qry::tokenize(trim(item.substr(eq + 1)));
      rel::Value v = toks[0].is_symbol("-")
                         ? rel::Value(-token_to_value(toks[1]).numeric())
                         : token_to_value(toks[0]);
      assignments.emplace_back(schema.index_of(col), std::move(v));
    }

    const auto tids = matching_tids(table, predicate);
    auto txn = db_->begin();
    for (const auto tid : tids) {
      std::vector<rel::Value> values = db_->table(table).find(tid)->values();
      for (const auto& [idx, v] : assignments) values[idx] = v;
      txn.modify(table, tid, std::move(values));
    }
    txn.commit();
    std::cout << "updated " << tids.size() << " row(s)\n";
  }

  // INSTALL name [MODE x] TRIGGER ... [STOP AFTER n] AS SELECT ...
  void do_install(const std::string& args) {
    const auto as_at = args.find(" AS ");
    const auto as_at2 = args.find(" as ");
    const auto at = as_at != std::string::npos ? as_at : as_at2;
    if (at == std::string::npos) throw common::ParseError("INSTALL ... AS SELECT ...");
    const std::string sql = trim(args.substr(at + 4));

    std::istringstream head(args.substr(0, at));
    std::string name;
    head >> name;

    core::DeliveryMode mode = core::DeliveryMode::kDifferential;
    core::TriggerPtr trigger;
    core::StopPtr stop;
    std::string word;
    while (head >> word) {
      for (auto& c : word) c = static_cast<char>(std::toupper(c));
      if (word == "MODE") {
        std::string m;
        head >> m;
        for (auto& c : m) c = static_cast<char>(std::toupper(c));
        if (m == "DIFF") {
          mode = core::DeliveryMode::kDifferential;
        } else if (m == "COMPLETE") {
          mode = core::DeliveryMode::kComplete;
        } else if (m == "INSERTIONS") {
          mode = core::DeliveryMode::kInsertionsOnly;
        } else if (m == "DELETIONS") {
          mode = core::DeliveryMode::kDeletionsOnly;
        } else {
          throw common::ParseError("unknown MODE " + m);
        }
      } else if (word == "TRIGGER") {
        std::string kind;
        head >> kind;
        for (auto& c : kind) c = static_cast<char>(std::toupper(c));
        if (kind == "ONCHANGE") {
          trigger = core::triggers::on_change();
        } else if (kind == "PERIODIC") {
          std::int64_t ticks = 0;
          head >> ticks;
          trigger = core::triggers::periodic(common::Duration(ticks));
        } else if (kind == "COUNT") {
          std::size_t n = 0;
          head >> n;
          trigger = core::triggers::change_count(n);
        } else if (kind == "DRIFT") {
          std::string table;
          std::string col;
          double eps = 0;
          head >> table >> col >> eps;
          trigger = core::triggers::aggregate_drift(table, col, eps);
        } else {
          throw common::ParseError("unknown TRIGGER " + kind);
        }
      } else if (word == "STOP") {
        std::string after;
        std::uint64_t n = 0;
        head >> after >> n;
        stop = core::stop::after_executions(n);
      }
    }
    if (!trigger) trigger = core::triggers::on_change();


    core::CqSpec spec = core::CqSpec::from_sql(name, sql, trigger, stop, mode);
    specs_[name] = SavedSpec{spec};
    const core::CqHandle h = manager_->install(std::move(spec), make_sink(name));
    handles_[name] = h;
  }

  /// Notification printer shared by INSTALL and RESTORE.
  [[nodiscard]] std::shared_ptr<core::ResultSink> make_sink(const std::string& name) {
    return std::make_shared<core::CallbackSink>([name](const core::Notification& n) {
      std::cout << "[" << name << " #" << n.sequence << " @t=" << n.at.to_string()
                << "]";
      if (n.sequence == 0) {
        std::cout << " initial result: "
                  << (n.complete ? n.complete->size() : n.aggregate->size())
                  << " row(s)\n";
        if (n.complete) std::cout << n.complete->to_string(10);
        return;
      }
      if (n.aggregate) {
        std::cout << " aggregate now:\n" << n.aggregate->to_string(10);
        return;
      }
      std::cout << " Δ+" << n.delta.inserted.size() << "/-" << n.delta.deleted.size()
                << "\n";
      if (!n.delta.inserted.empty()) {
        std::cout << " entered:\n" << n.delta.inserted.to_string(10);
      }
      if (!n.delta.deleted.empty()) {
        std::cout << " left:\n" << n.delta.deleted.to_string(10);
      }
      if (n.complete) std::cout << " complete:\n" << n.complete->to_string(10);
    });
  }

  // RESTORE <path>: swap in the snapshot database and re-install every CQ
  // whose spec this shell session recorded, resuming where each left off.
  void do_restore(const std::string& path) {
    persist::DecodedSnapshot snap = persist::load_snapshot_file(path);
    manager_.reset();  // drop CQs bound to the old database first
    db_ = std::make_unique<cat::Database>(std::move(snap.db));
    manager_ = std::make_unique<core::CqManager>(*db_);
    handles_.clear();
    std::size_t restored = 0;
    for (const auto& entry : snap.cqs) {
      auto it = specs_.find(entry.name);
      if (it == specs_.end()) {
        std::cout << "warning: no spec recorded for CQ '" << entry.name
                  << "'; not restored\n";
        continue;
      }
      handles_[entry.name] = manager_->install_restored(
          it->second.spec, make_sink(entry.name), entry.last_execution,
          entry.executions);
      ++restored;
    }
    std::cout << "restored database (" << db_->table_names().size()
              << " tables) and " << restored << " CQ(s) from " << path << "\n";
  }

  [[nodiscard]] core::CqHandle handle_of(const std::string& name) const {
    auto it = handles_.find(name);
    if (it == handles_.end() || !manager_->contains(it->second)) {
      throw common::NotFound("no installed CQ named '" + name + "'");
    }
    return it->second;
  }

  struct SavedSpec {
    core::CqSpec spec;
  };

  std::unique_ptr<cat::Database> db_;
  std::unique_ptr<core::CqManager> manager_;
  std::map<std::string, core::CqHandle> handles_;
  std::map<std::string, SavedSpec> specs_;  // for RESTORE
  // Serializes the command loop with server handlers. Outermost lock of
  // the process: rank kEngine (see docs/lock-hierarchy.md).
  common::Mutex mu_{"engine", common::lockorder::LockRank::kEngine};
  common::obs::IntrospectServer server_;
};

}  // namespace

int main() {
  Shell shell;
  std::string line;
  const bool interactive = isatty(0) != 0;
  if (interactive) std::cout << "cqshell — type HELP for commands\n";
  while (true) {
    if (interactive) std::cout << "cq> " << std::flush;
    if (!std::getline(std::cin, line)) break;
    if (!interactive) std::cout << "cq> " << line << "\n";
    if (!shell.handle(line)) break;
  }
  return 0;
}
