// cqtop — a terminal dashboard for a live continual-query engine.
//
// Two modes:
//
//   cqtop [--frames N] [--interval-ms M]
//     Local demo: runs a mediator with two update-generating sources and a
//     few CQs in-process and renders the engine's own registry — per-CQ
//     execution rates, p95 latency, delta backlog, source health, pool
//     lane utilization and lock-contention sites. This is the no-setup way
//     to see the dashboard move.
//
//   cqtop <host:port> [--frames N] [--interval-ms M]
//     Remote: polls http://host:port/metrics (a cqshell SERVE or
//     diom::serve_introspection endpoint) and renders the Prometheus
//     exposition — counters become rates across frames.
//
// On a TTY it redraws in place forever (Ctrl-C to quit); piped or with
// --frames it emits a bounded number of frames and exits, so it is safe in
// scripts and CI.
#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/lock_profile.hpp"
#include "common/logging.hpp"
#include "common/observability.hpp"
#include "cq/manager.hpp"
#include "cq/trigger.hpp"
#include "diom/mediator.hpp"
#include "diom/network.hpp"
#include "diom/source.hpp"

namespace {

using namespace cq;

struct Options {
  std::string endpoint;      // empty = local demo
  std::size_t frames = 0;    // 0 = forever (TTY) / 5 (non-TTY)
  std::size_t interval_ms = 1000;
};

Options parse_args(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--frames" && i + 1 < argc) {
      opt.frames = static_cast<std::size_t>(std::stoull(argv[++i]));
    } else if (arg == "--interval-ms" && i + 1 < argc) {
      opt.interval_ms = static_cast<std::size_t>(std::stoull(argv[++i]));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: cqtop [host:port] [--frames N] [--interval-ms M]\n";
      std::exit(0);
    } else if (!arg.empty() && arg[0] != '-') {
      opt.endpoint = arg;
    } else {
      std::cerr << "unknown option " << arg << "\n";
      std::exit(2);
    }
  }
  if (opt.frames == 0 && isatty(1) == 0) opt.frames = 5;  // bounded when piped
  return opt;
}

// ------------------------------------------------------------- rendering --

const char* kClear = "\x1b[2J\x1b[H";

std::string fmt_rate(double per_s) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(1) << per_s << "/s";
  return os.str();
}

std::string bar(double fraction, std::size_t width = 20) {
  if (fraction < 0) fraction = 0;
  if (fraction > 1) fraction = 1;
  const std::size_t filled = static_cast<std::size_t>(fraction * width + 0.5);
  std::string out;
  for (std::size_t i = 0; i < width; ++i) out += i < filled ? '#' : '.';
  return out;
}

/// Value of `key` in a structured label set (local mode reads the registry
/// directly; remote mode parses the exposition text via label_of below).
std::string label_of_pairs(const common::obs::Labels& labels, const std::string& key) {
  for (const auto& [k, v] : labels) {
    if (k == key) return v;
  }
  return "";
}

// ------------------------------------------------------------ local mode --

/// A source that mutates itself on demand — the demo's "autonomous"
/// producer: its own database, its own clock.
struct DemoSource {
  std::shared_ptr<cat::Database> db = std::make_shared<cat::Database>();
  std::shared_ptr<diom::RelationalSource> source;
  std::string table;
  std::uint64_t seq = 0;

  DemoSource(const std::string& name, const std::string& table_name) : table(table_name) {
    db->create_table(table, rel::Schema({{"id", rel::ValueType::kInt},
                                         {"load", rel::ValueType::kInt}}));
    source = std::make_shared<diom::RelationalSource>(name, *db, table);
  }

  void churn(std::size_t frame) {
    auto& clock = dynamic_cast<common::VirtualClock&>(db->clock());
    clock.advance(common::Duration(1));
    // A deterministic mix of inserts and updates keyed off the frame.
    for (int i = 0; i < 3; ++i) {
      db->insert(table, {rel::Value(static_cast<std::int64_t>(seq++)),
                         rel::Value(static_cast<std::int64_t>((frame * 7 + i * 13) % 100))});
    }
  }
};

int run_local(const Options& opt) {
  common::set_log_level(common::LogLevel::kWarn);  // keep the dashboard clean
  common::obs::set_enabled(true);
  common::lockprof::set_enabled(true);  // feed the LOCK SITE panel

  diom::Network net;
  diom::Mediator mediator("cqtop-demo", &net);
  DemoSource routers("routers", "Routers");
  DemoSource links("links", "Links");
  mediator.attach(routers.source, "Routers");
  mediator.attach(links.source, "Links");
  mediator.set_staleness_threshold(common::Duration(10));

  core::CqManager& manager = mediator.manager();
  manager.set_parallelism(2);  // give the LANE panel something to show
  core::CqSpec hot = core::CqSpec::from_sql(
      "hot_routers", "SELECT * FROM Routers WHERE load > 50",
      core::triggers::on_change(), nullptr, core::DeliveryMode::kDifferential);
  manager.install(std::move(hot), nullptr);
  core::CqSpec busy = core::CqSpec::from_sql(
      "busy_links", "SELECT * FROM Links WHERE load > 80",
      core::triggers::on_change(), nullptr, core::DeliveryMode::kDifferential);
  manager.install(std::move(busy), nullptr);

  const bool tty = isatty(1) != 0;
  std::map<std::string, std::uint64_t> prev_execs;
  for (std::size_t frame = 0; opt.frames == 0 || frame < opt.frames; ++frame) {
    routers.churn(frame);
    links.churn(frame);
    mediator.sync();
    manager.poll();
    if (frame % 8 == 7) manager.collect_garbage();

    std::ostringstream out;
    if (tty) out << kClear;
    out << "cqtop — local demo  frame " << frame + 1 << "\n\n";

    out << "CQ                 execs     rate      p95(us)   delivered\n";
    const double secs = static_cast<double>(opt.interval_ms) / 1000.0;
    static common::obs::Histogram& h =
        common::obs::global().histogram(common::obs::hist::kCqExecUs);
    for (const auto& [name, s] : manager.cq_stats()) {
      const std::uint64_t d = s.executions - prev_execs[name];
      prev_execs[name] = s.executions;
      out << std::left << std::setw(18) << name << " " << std::setw(9)
          << s.executions << " " << std::setw(9)
          << fmt_rate(static_cast<double>(d) / secs) << " " << std::setw(9)
          << static_cast<std::uint64_t>(h.p95()) << " " << s.rows_delivered << "\n";
    }

    out << "\nTABLE              rows      delta backlog\n";
    const cat::Database& db = mediator.database();
    for (const auto& t : db.table_names()) {
      const std::size_t backlog = db.delta(t).size();
      out << std::left << std::setw(18) << t << " " << std::setw(9)
          << db.table(t).size() << " " << std::setw(6) << backlog << " "
          << bar(static_cast<double>(backlog) / 64.0) << "\n";
    }

    out << "\nSOURCE             staleness  failures  health\n";
    for (const auto& s : mediator.health()) {
      out << std::left << std::setw(18) << s.source_name << " " << std::setw(10)
          << s.staleness_ticks << " " << std::setw(9) << s.failures << " "
          << (s.healthy ? "ok" : "STALE") << "\n";
    }

    // Per-lane busy time + utilization (published by the thread pool's
    // refresh hook) and the lock-contention site table.
    common::obs::refresh_registry_gauges();
    std::map<std::string, std::pair<std::int64_t, std::int64_t>> lanes;  // busy, util
    for (const auto& g : common::obs::global().gauge_snapshot()) {
      const std::string lane = label_of_pairs(g.labels, "lane");
      if (lane.empty()) continue;
      if (g.name == common::obs::gauge::kPoolLaneBusyUs) lanes[lane].first = g.value;
      if (g.name == common::obs::gauge::kPoolLaneUtilization) {
        lanes[lane].second = g.value;
      }
    }
    if (!lanes.empty()) {
      out << "\nLANE               busy(us)   util%\n";
      for (const auto& [name, v] : lanes) {
        out << std::left << std::setw(18) << name << " " << std::setw(10) << v.first
            << " " << std::setw(4) << v.second << " "
            << bar(static_cast<double>(v.second) / 100.0) << "\n";
      }
    }
    if (common::lockprof::site_count() > 0) {
      out << "\nLOCK SITE          acquires  contended  wait(us)  hold(us)\n";
      for (std::size_t i = 0; i < common::lockprof::site_count(); ++i) {
        const auto& s = common::lockprof::site(i);
        const char* name = s.name.load(std::memory_order_acquire);
        out << std::left << std::setw(18) << (name != nullptr ? name : "?") << " "
            << std::setw(9) << s.acquisitions.load(std::memory_order_relaxed) << " "
            << std::setw(10) << s.contended.load(std::memory_order_relaxed) << " "
            << std::setw(9) << s.wait_ns.load(std::memory_order_relaxed) / 1000
            << " " << s.hold_ns.load(std::memory_order_relaxed) / 1000 << "\n";
      }
    }
    std::cout << out.str() << std::flush;

    if (opt.frames == 0 || frame + 1 < opt.frames) {
      std::this_thread::sleep_for(std::chrono::milliseconds(opt.interval_ms));
    }
  }
  return 0;
}

// ----------------------------------------------------------- remote mode --

/// Blocking GET http://host:port/path; returns the body. Throws IoError.
std::string http_get(const std::string& host, const std::string& port,
                     const std::string& path) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (getaddrinfo(host.c_str(), port.c_str(), &hints, &res) != 0 || res == nullptr) {
    throw common::IoError("cqtop: cannot resolve " + host + ":" + port);
  }
  int fd = -1;
  for (addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    ::close(fd);
    fd = -1;
  }
  freeaddrinfo(res);
  if (fd < 0) throw common::IoError("cqtop: cannot connect to " + host + ":" + port);

  const std::string req = "GET " + path + " HTTP/1.1\r\nHost: " + host +
                          "\r\nConnection: close\r\n\r\n";
  std::size_t off = 0;
  while (off < req.size()) {
    const ssize_t n = ::send(fd, req.data() + off, req.size() - off, 0);
    if (n <= 0) {
      ::close(fd);
      throw common::IoError("cqtop: send failed");
    }
    off += static_cast<std::size_t>(n);
  }
  std::string raw;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof buf);
    if (n <= 0) break;
    raw.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  const auto split = raw.find("\r\n\r\n");
  if (split == std::string::npos) throw common::IoError("cqtop: malformed response");
  return raw.substr(split + 4);
}

/// One parsed Prometheus sample: name, sorted label text, value.
struct Sample {
  std::string name;
  std::string labels;  // raw inner text: cq="watch"
  double value = 0;
};

std::vector<Sample> parse_prometheus(const std::string& body) {
  std::vector<Sample> out;
  std::istringstream lines(body);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty() || line[0] == '#') continue;
    const auto sp = line.rfind(' ');
    if (sp == std::string::npos) continue;
    Sample s;
    s.value = std::strtod(line.c_str() + sp + 1, nullptr);
    std::string head = line.substr(0, sp);
    const auto brace = head.find('{');
    if (brace != std::string::npos) {
      s.name = head.substr(0, brace);
      const auto end = head.rfind('}');
      s.labels = head.substr(brace + 1, end - brace - 1);
    } else {
      s.name = head;
    }
    out.push_back(std::move(s));
  }
  return out;
}

/// Value of the label `key` inside a raw label string, or "".
std::string label_of(const std::string& labels, const std::string& key) {
  const std::string needle = key + "=\"";
  const auto at = labels.find(needle);
  if (at == std::string::npos) return "";
  const auto end = labels.find('"', at + needle.size());
  return labels.substr(at + needle.size(), end - at - needle.size());
}

int run_remote(const Options& opt) {
  const auto colon = opt.endpoint.rfind(':');
  if (colon == std::string::npos) {
    std::cerr << "cqtop: endpoint must be host:port\n";
    return 2;
  }
  const std::string host = opt.endpoint.substr(0, colon);
  const std::string port = opt.endpoint.substr(colon + 1);
  const bool tty = isatty(1) != 0;

  std::map<std::string, double> prev;  // name{labels} -> value, for rates
  for (std::size_t frame = 0; opt.frames == 0 || frame < opt.frames; ++frame) {
    std::vector<Sample> samples;
    try {
      samples = parse_prometheus(http_get(host, port, "/metrics"));
    } catch (const common::Error& e) {
      std::cerr << e.what() << "\n";
      return 1;
    }

    const double secs = static_cast<double>(opt.interval_ms) / 1000.0;
    std::ostringstream out;
    if (tty) out << kClear;
    out << "cqtop — " << opt.endpoint << "  frame " << frame + 1 << "\n\n";

    out << "CQ                 execs     rate      delivered\n";
    std::map<std::string, std::pair<double, double>> cqs;  // name -> execs, delivered
    for (const auto& s : samples) {
      const std::string cq = label_of(s.labels, "cq");
      if (cq.empty()) continue;
      if (s.name == "cq_executions_total") cqs[cq].first = s.value;
      if (s.name == "cq_rows_delivered_total") cqs[cq].second = s.value;
    }
    for (const auto& [name, v] : cqs) {
      const std::string key = "exec{" + name + "}";
      const double rate = (v.first - prev[key]) / secs;
      prev[key] = v.first;
      out << std::left << std::setw(18) << name << " " << std::setw(9) << v.first
          << " " << std::setw(9) << fmt_rate(rate < 0 ? 0 : rate) << " " << v.second
          << "\n";
    }

    out << "\nTABLE              rows      delta backlog\n";
    std::map<std::string, std::pair<double, double>> tables;  // rows, delta rows
    for (const auto& s : samples) {
      const std::string t = label_of(s.labels, "table");
      if (t.empty()) continue;
      if (s.name == "cq_relation_rows") tables[t].first = s.value;
      if (s.name == "cq_delta_rows") tables[t].second = s.value;
    }
    for (const auto& [name, v] : tables) {
      out << std::left << std::setw(18) << name << " " << std::setw(9) << v.first
          << " " << std::setw(6) << v.second << " " << bar(v.second / 64.0) << "\n";
    }

    out << "\nSOURCE             staleness  up\n";
    std::map<std::string, std::pair<double, double>> sources;  // staleness, up
    for (const auto& s : samples) {
      const std::string src = label_of(s.labels, "source");
      if (src.empty()) continue;
      if (s.name == "cq_source_staleness_ticks_live") sources[src].first = s.value;
      if (s.name == "cq_source_up") sources[src].second = s.value;
    }
    for (const auto& [name, v] : sources) {
      out << std::left << std::setw(18) << name << " " << std::setw(10) << v.first
          << " " << (v.second > 0 ? "ok" : "DOWN") << "\n";
    }

    std::map<std::string, std::pair<double, double>> lanes;  // busy us, util%
    for (const auto& s : samples) {
      const std::string lane = label_of(s.labels, "lane");
      if (lane.empty()) continue;
      if (s.name == "cq_pool_lane_busy_us_total") lanes[lane].first = s.value;
      if (s.name == "cq_pool_lane_utilization_pct") lanes[lane].second = s.value;
    }
    if (!lanes.empty()) {
      out << "\nLANE               util%now  util%avg\n";
      for (const auto& [name, v] : lanes) {
        // busy-time delta / wall time = instantaneous utilization; the
        // exported _pct gauge is the since-start average.
        const std::string key = "lane{" + name + "}";
        double now_pct = (v.first - prev[key]) / (secs * 1e6) * 100.0;
        if (now_pct < 0 || frame == 0) now_pct = 0;
        prev[key] = v.first;
        out << std::left << std::setw(18) << name << " " << std::setw(9)
            << static_cast<std::uint64_t>(now_pct) << " " << std::setw(4) << v.second
            << " " << bar(v.second / 100.0) << "\n";
      }
    }

    struct LockRow {
      double acquisitions = 0;
      double contended = 0;
      double wait_us = 0;
    };
    std::map<std::string, LockRow> locks;
    for (const auto& s : samples) {
      const std::string site = label_of(s.labels, "site");
      if (site.empty()) continue;
      if (s.name == "cq_lock_acquisitions_total") locks[site].acquisitions = s.value;
      if (s.name == "cq_lock_contended_total") locks[site].contended = s.value;
      if (s.name == "cq_lock_wait_us_sum") locks[site].wait_us = s.value;
    }
    if (!locks.empty()) {
      out << "\nLOCK SITE          acquires  contended  wait(us)\n";
      for (const auto& [name, v] : locks) {
        out << std::left << std::setw(18) << name << " " << std::setw(9)
            << v.acquisitions << " " << std::setw(10) << v.contended << " "
            << v.wait_us << "\n";
      }
    }
    std::cout << out.str() << std::flush;

    if (opt.frames == 0 || frame + 1 < opt.frames) {
      std::this_thread::sleep_for(std::chrono::milliseconds(opt.interval_ms));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const Options opt = parse_args(argc, argv);
  return opt.endpoint.empty() ? run_local(opt) : run_remote(opt);
}
