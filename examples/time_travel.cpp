// The continual query as a *sequence* (Section 3.1): ResultHistory records
// every execution of a portfolio-watch CQ; afterwards we time-travel —
// "what did the analyst's screen show at 10:30?" — and audit when each
// position entered or left the watchlist, plus snapshot the deployment to
// a file and prove a restarted process resumes seamlessly.
#include <cstdio>
#include <iostream>

#include "common/rng.hpp"
#include "cq/history.hpp"
#include "cq/manager.hpp"
#include "persist/snapshot.hpp"
#include "workload/stocks.hpp"

int main() {
  using namespace cq;

  common::Rng rng(21);
  cat::Database db;
  wl::StocksWorkload market(db, "Stocks", {.symbols = 500}, rng);
  core::CqManager manager(db);

  auto history = std::make_shared<core::ResultHistory>(/*checkpoint_every=*/8);
  const core::CqHandle watch = manager.install(
      core::CqSpec::from_sql("watchlist",
                             "SELECT symbol, price FROM Stocks WHERE price < 20",
                             core::triggers::on_change()),
      history);

  std::vector<common::Timestamp> session_times;
  session_times.push_back(manager.cq(watch).last_execution());
  for (int session = 1; session <= 12; ++session) {
    market.step(/*trades=*/120, /*listings=*/5, /*delistings=*/4);
    manager.poll();
    session_times.push_back(manager.cq(watch).last_execution());
  }

  std::cout << "Recorded " << history->size() << " executions ("
            << history->stored_rows() << " rows stored incl. checkpoints)\n\n";

  // --- time travel --------------------------------------------------------
  for (std::size_t i : {std::size_t{0}, session_times.size() / 2,
                        session_times.size() - 1}) {
    const auto result = history->as_of(session_times[i]);
    std::cout << "watchlist as of t=" << session_times[i].to_string() << ": "
              << result.size() << " symbols\n";
  }

  // --- audit: when did things enter/leave? -------------------------------
  std::size_t entered = 0;
  std::size_t left = 0;
  for (std::size_t i = 1; i < history->size(); ++i) {
    entered += history->delta(i).inserted.size();
    left += history->delta(i).deleted.size();
  }
  std::cout << "\nacross the day: " << entered << " entries, " << left
            << " exits from the watchlist\n";

  // --- snapshot to disk, restart, resume ----------------------------------
  const char* path = "/tmp/cq_time_travel.snapshot";
  persist::save_snapshot_file(path, db, manager);
  persist::DecodedSnapshot snap = persist::load_snapshot_file(path);
  core::CqManager manager2(snap.db);
  auto sink2 = std::make_shared<core::CollectingSink>();
  const core::CqHandle restored = manager2.install_restored(
      core::CqSpec::from_sql("watchlist",
                             "SELECT symbol, price FROM Stocks WHERE price < 20",
                             core::triggers::on_change()),
      sink2, snap.cqs[0].last_execution, snap.cqs[0].executions);

  // New trading day against the restored deployment.
  snap.db.insert("Stocks", {rel::Value("CHEAP"), rel::Value("NYSE"),
                            rel::Value(5), rel::Value(1000)});
  manager2.poll();
  std::cout << "\nafter restart from " << path << ": execution #"
            << manager2.cq(restored).executions() - 1 << " delivered Δ+"
            << sink2->notifications().back().delta.inserted.size() << "\n";
  std::remove(path);
  return 0;
}
