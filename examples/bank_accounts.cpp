// Section 5.3's running example: a bank manager's checking-account sum-up
// query installed as a continual query with the epsilon specification
//   TCQ = |Deposits − Withdrawals| >= 0.5M,   Stop: nil.
//
// The trigger is evaluated in its differential form — scanning only
// ΔCheckingAccounts — and the SUM itself is maintained incrementally, so
// neither the trigger check nor the refresh ever rescans the base table.
#include <iostream>

#include "common/rng.hpp"
#include "cq/manager.hpp"
#include "workload/accounts.hpp"

int main() {
  using namespace cq;

  common::Rng rng(7);
  cat::Database db;
  wl::AccountsWorkload bank(db, "CheckingAccounts",
                            {.accounts = 10000,
                             .initial_balance_lo = 1000,
                             .initial_balance_hi = 40000},
                            rng);
  core::CqManager manager(db);

  auto sink = std::make_shared<core::CollectingSink>();
  manager.install(
      core::CqSpec::from_sql(
          "sum-up", "SELECT SUM(amount) FROM CheckingAccounts",
          core::triggers::aggregate_drift("CheckingAccounts", "amount", 500'000.0)),
      sink);

  const auto& initial = sink->notifications().front();
  std::cout << "Initial sum-up: $" << initial.aggregate->row(0).at(0).to_string()
            << " across " << db.table("CheckingAccounts").size() << " accounts\n\n";

  // The CQ manager checks the TCQ "every day at midnight" (here: per poll).
  std::int64_t drift_since_refresh = 0;
  for (int day = 1; day <= 14; ++day) {
    const std::int64_t net = bank.step(/*movements=*/800);
    drift_since_refresh += net;
    const std::size_t fired = manager.poll();
    std::cout << "day " << day << ": net movement $" << net;
    if (fired > 0) {
      const auto& latest = sink->notifications().back();
      std::cout << "  -> ε-spec exceeded (|accumulated| ≈ $"
                << (drift_since_refresh < 0 ? -drift_since_refresh
                                            : drift_since_refresh)
                << "), refreshed differentially: SUM = $"
                << latest.aggregate->row(0).at(0).to_string() << " (exec #"
                << latest.sequence << ")";
      drift_since_refresh = 0;
    } else {
      std::cout << "  -> within tolerance, no refresh";
    }
    std::cout << "\n";
    manager.collect_garbage();
  }

  std::cout << "\nTotal query executions: " << sink->notifications().size()
            << " (of 15 trigger checks)\n";
  std::cout << "Delta rows scanned by all refreshes: "
            << manager.metrics().get(common::metric::kDeltaRowsScanned) << "\n";
  std::cout << "Base rows scanned after installation: "
            << manager.metrics().get(common::metric::kBaseRowsScanned) -
                   static_cast<std::int64_t>(db.table("CheckingAccounts").size())
            << " (the initial execution scanned the table once)\n";
  return 0;
}
