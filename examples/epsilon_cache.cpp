// Epsilon views in action: a dashboard server answers thousands of reads
// against a hot orders table. With an ε-spec ("answers may be stale by at
// most 50 relevant order changes, and the revenue sum by at most $10,000"),
// almost every read is served from cache; the view refreshes itself —
// differentially — only when the bound would be violated. Compare the
// refresh count against the zero-tolerance configuration.
#include <iostream>

#include "catalog/transaction.hpp"
#include "common/rng.hpp"
#include "cq/epsilon_view.hpp"
#include "workload/sweep.hpp"

int main() {
  using namespace cq;
  using rel::Value;

  common::Rng rng(5);
  cat::Database db;
  wl::SweepTable orders(db, "Orders", 20000, 64, rng);

  // `key` is uniform in [0, 1M); a single order modification moves the sum
  // by ~300k on average, so a $2M drift tolerance absorbs a handful of
  // changes while the 50-change bound absorbs a few minutes of trickle.
  core::EpsilonView bounded(
      "bounded", "SELECT COUNT(*) AS open_orders, SUM(key) AS revenue FROM Orders",
      db,
      {.max_relevant_changes = 50,
       .max_drift = 2'000'000.0,
       .drift_table = "Orders",
       .drift_column = "key"});

  core::EpsilonView exact(
      "exact", "SELECT COUNT(*) AS open_orders, SUM(key) AS revenue FROM Orders", db,
      {.max_relevant_changes = 0});

  std::size_t bounded_refreshes = 0;
  std::size_t exact_refreshes = 0;
  std::size_t reads = 0;

  for (int minute = 1; minute <= 30; ++minute) {
    // A trickle of order changes...
    orders.update(8, {.modify_fraction = 0.5, .delete_fraction = 0.2});
    // ...and a burst of dashboard reads.
    for (int r = 0; r < 40; ++r) {
      const auto a = bounded.read();
      const auto b = exact.read();
      bounded_refreshes += a.refreshed ? 1 : 0;
      exact_refreshes += b.refreshed ? 1 : 0;
      ++reads;
    }
  }

  std::cout << "reads served:            " << reads << "\n";
  std::cout << "ε-bounded view refreshes: " << bounded_refreshes << "  (divergence "
            << "bounded by 50 changes / $2M drift)\n";
  std::cout << "zero-tolerance refreshes: " << exact_refreshes << "\n";
  const auto final_bounded = bounded.read();
  std::cout << "final bounded answer (divergence " << final_bounded.divergence
            << "): " << final_bounded.result.row(0).at(0).to_string()
            << " open orders\n";
  return 0;
}
