// The flagship target: the paper's DRA ≡ complete-re-evaluation theorem as
// a differential fuzzing oracle. The input bytes are interpreted as a
// transaction script plus a generated CQ (query, trigger, epsilon spec,
// delivery mode, DRA ablation flags); the interpreter runs it against two
// lockstep databases — one maintained by the DRA, one by full recompute —
// and any disagreement in delivered rows OR trigger fire/suppress
// decisions aborts with the minimized script as the reproducer.
#include "fuzz_entry.hpp"
#include "targets.hpp"
#include "testing/dra_script.hpp"

namespace cq::fuzz {

int dra_oracle_target(const std::uint8_t* data, std::size_t size) {
  const testing::DraScriptReport report = testing::run_dra_oracle_script(data, size);
  if (!report.ok) {
    violation("dra_oracle", "DRA diverged from the recompute oracle",
              report.message.c_str());
  }
  return 0;
}

}  // namespace cq::fuzz

CQ_FUZZ_ENTRY(cq::fuzz::dra_oracle_target)
