// Expression-evaluator target: decode the input bytes into (a) a tuple of
// adversarial scalar Values — NULLs, INT64 extremes, arbitrary double bit
// patterns including NaN/Inf, strings with quotes — and (b) a random
// expression tree over those columns, then evaluate.
//
// Oracles:
//   1. eval/eval_bool either return a Value or throw a typed error
//      (NotFound for bad columns, InvalidArgument past kMaxEvalDepth);
//      signed-overflow UB or stack overflow is a crash the sanitizers flag.
//   2. Evaluation is deterministic: the same tree over the same tuple
//      yields the same Value twice.
//   3. Integer arithmetic that would overflow yields NULL, never a wrong
//      wrapped value (checked against __int128 ground truth for the
//      top-level node when both operands are INT).
#include <cstring>
#include <string>
#include <vector>

#include "algebra/expr.hpp"
#include "common/error.hpp"
#include "fuzz_entry.hpp"
#include "relation/schema.hpp"
#include "relation/tuple.hpp"
#include "testing/fuzz_input.hpp"

namespace cq::fuzz {

namespace {

using alg::Expr;
using alg::ExprPtr;
using rel::Value;
using testing::ByteReader;

const char* const kColumns[] = {"b", "i", "j", "d", "s"};

Value random_value(ByteReader& in) {
  switch (in.index(8)) {
    case 0: return Value::null();
    case 1: return Value(in.flip());
    case 2: return Value(in.i64());  // full range, INT64_MIN included
    case 3: return Value(static_cast<std::int64_t>(in.range(-8, 8)));
    case 4: {
      std::uint64_t bits = static_cast<std::uint64_t>(in.i64());
      double d = 0;
      std::memcpy(&d, &bits, sizeof(d));  // NaN, Inf, denormals — all fair
      return Value(d);
    }
    case 5: return Value(in.str(12));
    case 6: return Value(std::string("a'b\"c\\"));  // quoting stress
    default: return Value(static_cast<std::int64_t>(in.range(0, 100)));
  }
}

ExprPtr random_expr(ByteReader& in, std::size_t depth) {
  if (depth == 0 || in.index(3) == 0) {
    return in.flip() ? Expr::col(kColumns[in.index(std::size(kColumns))])
                     : Expr::lit(random_value(in));
  }
  switch (in.index(7)) {
    case 0: {
      static constexpr alg::CmpOp kOps[] = {alg::CmpOp::kEq, alg::CmpOp::kNe,
                                            alg::CmpOp::kLt, alg::CmpOp::kLe,
                                            alg::CmpOp::kGt, alg::CmpOp::kGe};
      return Expr::cmp(kOps[in.index(std::size(kOps))], random_expr(in, depth - 1),
                       random_expr(in, depth - 1));
    }
    case 1: {
      static constexpr alg::ArithOp kOps[] = {alg::ArithOp::kAdd, alg::ArithOp::kSub,
                                              alg::ArithOp::kMul, alg::ArithOp::kDiv};
      return Expr::arith(kOps[in.index(std::size(kOps))], random_expr(in, depth - 1),
                         random_expr(in, depth - 1));
    }
    case 2:
      return in.flip() ? Expr::logical_and(random_expr(in, depth - 1),
                                           random_expr(in, depth - 1))
                       : Expr::logical_or(random_expr(in, depth - 1),
                                          random_expr(in, depth - 1));
    case 3: return Expr::logical_not(random_expr(in, depth - 1));
    case 4: return Expr::is_null(random_expr(in, depth - 1), in.flip());
    case 5: {
      std::vector<Value> list;
      const std::size_t n = in.index(4);
      for (std::size_t i = 0; i < n; ++i) list.push_back(random_value(in));
      return Expr::in_list(random_expr(in, depth - 1), std::move(list), in.flip());
    }
    default:
      return in.flip()
                 ? Expr::between(random_expr(in, depth - 1), random_value(in),
                                 random_value(in))
                 : Expr::like_prefix(random_expr(in, depth - 1), in.str(6));
  }
}

/// A pathological linear chain: depth comes straight from the input so the
/// fuzzer can push past Expr::kMaxEvalDepth and hit the typed ceiling.
ExprPtr deep_chain(ByteReader& in) {
  const std::size_t depth = in.u32() % (2 * Expr::kMaxEvalDepth);
  ExprPtr e = Expr::col("i");
  for (std::size_t i = 0; i < depth; ++i) {
    e = in.flip() ? Expr::arith(alg::ArithOp::kAdd, std::move(e), Expr::lit(Value(1)))
                  : Expr::logical_not(std::move(e));
  }
  return e;
}

}  // namespace

int expr_eval_target(const std::uint8_t* data, std::size_t size) {
  ByteReader in(data, size);
  const auto schema = rel::Schema::of({{"b", rel::ValueType::kBool},
                                       {"i", rel::ValueType::kInt},
                                       {"j", rel::ValueType::kInt},
                                       {"d", rel::ValueType::kDouble},
                                       {"s", rel::ValueType::kString}});
  std::vector<Value> values;
  values.reserve(schema.size());
  values.push_back(in.flip() ? Value(in.flip()) : Value::null());
  values.push_back(Value(in.i64()));
  values.push_back(Value(in.i64()));
  values.push_back(random_value(in));
  values.push_back(Value(in.str(8)));
  const rel::Tuple tuple(values);

  const ExprPtr expr = in.index(8) == 0 ? deep_chain(in) : random_expr(in, 5);

  Value first;
  bool threw = false;
  try {
    first = expr->eval(tuple, schema);
  } catch (const common::Error&) {
    threw = true;  // typed rejection (depth ceiling etc.): fine
  }
  try {
    const Value second = expr->eval(tuple, schema);
    if (threw) {
      violation("expr_eval", "eval threw once then succeeded",
                expr->to_string().c_str());
    }
    if (!(first == second)) {
      violation("expr_eval", "eval is nondeterministic", expr->to_string().c_str());
    }
  } catch (const common::Error&) {
    if (!threw) {
      violation("expr_eval", "eval succeeded once then threw",
                expr->to_string().c_str());
    }
  }

  // Ground-truth overflow check on a fresh top-level arith node.
  const std::int64_t lhs = values[1].as_int();
  const std::int64_t rhs = values[2].as_int();
  const auto node = Expr::arith(alg::ArithOp::kAdd, Expr::col("i"), Expr::col("j"));
  const Value sum = node->eval(tuple, schema);
  const __int128 wide = static_cast<__int128>(lhs) + static_cast<__int128>(rhs);
  if (wide >= INT64_MIN && wide <= INT64_MAX) {
    if (sum.is_null() || sum.as_int() != static_cast<std::int64_t>(wide)) {
      violation("expr_eval", "in-range INT addition wrong", node->to_string().c_str());
    }
  } else if (!sum.is_null()) {
    violation("expr_eval", "overflowing INT addition did not yield NULL",
              node->to_string().c_str());
  }

  try {
    (void)expr->eval_bool(tuple, schema);
  } catch (const common::Error&) {
  }
  return 0;
}

}  // namespace cq::fuzz

CQ_FUZZ_ENTRY(cq::fuzz::expr_eval_target)
