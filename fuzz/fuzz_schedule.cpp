// Schedule-perturbation determinism target: the input's first 8 bytes seed
// the perturber (common/schedule.hpp), the rest is a DRA transaction
// script (tests/testing/dra_script.hpp). The script runs twice — once
// sequential and unperturbed to establish the reference digest, once with
// eval_threads > 1 while every CQ_SCHED_POINT in the Mutex/ThreadPool hot
// paths injects seeded yields and micro-sleeps. libFuzzer therefore
// explores the *interleaving* space, not just the input space: any
// schedule in which the parallel pipeline delivers different rows, a
// different order, or different trigger decisions than the sequential one
// aborts with the (seed, script) pair as a deterministic reproducer. The
// lock-order checker (when compiled in) rides along for free — a rank
// inversion or cycle surfaced by an exotic interleaving aborts too.
#include "fuzz_entry.hpp"
#include "targets.hpp"

#include "common/schedule.hpp"
#include "testing/dra_script.hpp"

namespace cq::fuzz {

namespace {

/// RAII so a violation()/abort path can't leave the process-global
/// perturber armed for the next fuzz iteration's baseline run.
struct PerturbScope {
  explicit PerturbScope(std::uint64_t seed) { common::schedule::enable(seed); }
  ~PerturbScope() { common::schedule::disable(); }
};

}  // namespace

int schedule_target(const std::uint8_t* data, std::size_t size) {
  if (size < 8) return 0;  // need a full seed; shorter inputs are boring
  std::uint64_t seed = 0;
  for (int i = 0; i < 8; ++i) {
    seed |= static_cast<std::uint64_t>(data[i]) << (8 * i);
  }
  data += 8;
  size -= 8;

  // Reference: sequential, unperturbed. A script the DRA itself cannot
  // handle is dra_oracle's bug, not a schedule bug — skip it here.
  const testing::DraScriptReport base = testing::run_dra_oracle_script(data, size);
  if (!base.ok) return 0;
  if (base.commits == 0) return 0;  // no commit pipeline exercised

  testing::DraScriptConfig cfg;
  cfg.eval_threads = 2 + static_cast<std::size_t>(seed % 3);  // 2..4 lanes
  testing::DraScriptReport perturbed;
  {
    PerturbScope perturb(seed);
    perturbed = testing::run_dra_oracle_script(data, size, cfg);
  }

  if (!perturbed.ok) {
    violation("schedule", "perturbed parallel run diverged from its oracle",
              perturbed.message.c_str());
  }
  if (perturbed.digest != base.digest) {
    violation("schedule",
              "notification digest depends on the thread schedule",
              ("sequential and perturbed parallel runs of the same script "
               "delivered different notification streams (threads=" +
               std::to_string(cfg.eval_threads) + ", seed=" +
               std::to_string(seed) + ")")
                  .c_str());
  }
  return 0;
}

}  // namespace cq::fuzz

CQ_FUZZ_ENTRY(cq::fuzz::schedule_target)
