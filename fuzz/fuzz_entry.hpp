// Dual-personality fuzz targets. Every fuzz_<name>.cpp defines a plain
// function cq::fuzz::<name>_target(data, size) and then invokes
// CQ_FUZZ_ENTRY(<fn>) to emit the canonical libFuzzer entry point. Built
// with -fsanitize=fuzzer (the `fuzz` preset, clang) the entry point is
// driven by libFuzzer; built plainly (GCC tier-1, ASan lane) the same
// object links against fuzz/replay_main.cpp, which replays the checked-in
// corpus + regression files through it as a deterministic ctest case.
//
// Defining CQ_FUZZ_NO_ENTRY suppresses the extern "C" symbol so several
// targets can be aggregated into one binary (tests/fuzz_regression_test).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#if defined(CQ_FUZZ_NO_ENTRY)
#define CQ_FUZZ_ENTRY(fn)
#else
#define CQ_FUZZ_ENTRY(fn)                                         \
  extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, \
                                        std::size_t size) {       \
    return fn(data, size);                                        \
  }
#endif

namespace cq::fuzz {

/// Oracle-violation reporter: print and abort so both libFuzzer and the
/// replay driver flag the input (abort, not exit, so ASan prints a trace).
[[noreturn]] inline void violation(const char* target, const char* what,
                                   const char* detail) {
  std::fprintf(stderr, "[%s] ORACLE VIOLATION: %s\n%s\n", target, what, detail);
  std::abort();
}

}  // namespace cq::fuzz
