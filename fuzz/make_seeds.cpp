// Seed-corpus generator: `fuzz_make_seeds <repo>/fuzz/corpus` re-emits the
// binary seeds for the wire_decode target (and a structured starter script
// for dra_oracle). The wire/persist encodings are canonical and versioned
// by the code, not by hand — regenerate and commit after a format change.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "catalog/database.hpp"
#include "catalog/transaction.hpp"
#include "cq/manager.hpp"
#include "diom/wire.hpp"
#include "persist/snapshot.hpp"

namespace {

namespace fs = std::filesystem;
using Bytes = cq::diom::Bytes;

void write_seed(const fs::path& dir, const std::string& name, std::uint8_t route,
                const Bytes& payload) {
  fs::create_directories(dir);
  const fs::path path = dir / name;
  std::FILE* f = std::fopen(path.string().c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.string().c_str());
    std::exit(2);
  }
  std::fwrite(&route, 1, 1, f);
  if (!payload.empty()) std::fwrite(payload.data(), 1, payload.size(), f);
  std::fclose(f);
  std::printf("wrote %s (%zu bytes)\n", path.string().c_str(), payload.size() + 1);
}

cq::cat::Database sample_database() {
  cq::cat::Database db;
  db.create_table("S", cq::rel::Schema::of({{"id", cq::rel::ValueType::kInt},
                                            {"category", cq::rel::ValueType::kString},
                                            {"price", cq::rel::ValueType::kInt},
                                            {"qty", cq::rel::ValueType::kInt}}));
  db.create_index("S", "s_cat", {"category"});
  auto txn = db.begin();
  (void)txn.insert("S", {std::int64_t{1}, "red", std::int64_t{10}, std::int64_t{2}});
  (void)txn.insert("S", {std::int64_t{2}, "blue", std::int64_t{20}, std::int64_t{3}});
  auto tid = txn.insert("S", {std::int64_t{3}, "gold", std::int64_t{30}, std::int64_t{4}});
  txn.commit();
  auto txn2 = db.begin();
  txn2.modify("S", tid, {std::int64_t{3}, "gold", std::int64_t{35}, std::int64_t{4}});
  txn2.commit();
  return db;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root-dir>\n", argv[0]);
    return 2;
  }
  const fs::path wire_dir = fs::path(argv[1]) / "wire_decode";

  // Route 0: a relation over the fixed fuzz schema (i INT, s STRING, d DOUBLE).
  cq::rel::Relation relation(cq::rel::Schema::of({{"i", cq::rel::ValueType::kInt},
                                                  {"s", cq::rel::ValueType::kString},
                                                  {"d", cq::rel::ValueType::kDouble}}));
  relation.append(cq::rel::Tuple({std::int64_t{7}, "seed", 1.5}));
  relation.append(cq::rel::Tuple({std::int64_t{-1}, "", 0.0}));
  relation.append(cq::rel::Tuple({cq::rel::Value::null(), "n'l", -2.25}));
  write_seed(wire_dir, "relation.bin", 0, cq::diom::encode_relation(relation));

  // Route 1: a delta batch (insert / delete / modify), arity 2.
  std::vector<cq::delta::DeltaRow> deltas;
  deltas.push_back({cq::rel::TupleId(1), std::nullopt,
                    std::vector<cq::rel::Value>{std::int64_t{1}, "a"},
                    cq::common::Timestamp(3)});
  deltas.push_back({cq::rel::TupleId(2),
                    std::vector<cq::rel::Value>{std::int64_t{2}, "b"}, std::nullopt,
                    cq::common::Timestamp(4)});
  deltas.push_back({cq::rel::TupleId(3),
                    std::vector<cq::rel::Value>{std::int64_t{3}, "c"},
                    std::vector<cq::rel::Value>{std::int64_t{3}, "d"},
                    cq::common::Timestamp(5)});
  write_seed(wire_dir, "deltas.bin", 1, cq::diom::encode_deltas(deltas));

  // Route 2: a CQ manifest.
  std::vector<cq::persist::CqManifestEntry> manifest;
  manifest.push_back({"cq", cq::common::Timestamp(9), 4});
  manifest.push_back({"watch", cq::common::Timestamp(2), 1});
  write_seed(wire_dir, "manifest.bin", 2, cq::persist::encode_manifest(manifest));

  // Routes 3/4: a whole database and a database+manifest snapshot.
  cq::cat::Database db = sample_database();
  write_seed(wire_dir, "database.bin", 3, cq::persist::save_database(db));
  cq::core::CqManager manager(db);
  write_seed(wire_dir, "snapshot.bin", 4, cq::persist::encode_snapshot(db, manager));
  return 0;
}
