// Decoder target: raw attacker-controlled bytes into the persist/wire
// deserializers. The first byte routes to one decoder; the rest is payload.
//
// Oracles:
//   1. Decoders either succeed or throw a typed error — no OOM from
//      attacker-chosen counts (Decoder::check_count), no overflowing
//      offset math, no uncaught std exceptions.
//   2. Canonical encoding: every decoder rejects trailing bytes, so a
//      successful decode must re-encode to exactly the input bytes
//      (relation/delta/manifest round trips) or to a blob that decodes to
//      an equal structure (whole-database snapshots, where tid counters
//      are not part of the value).
#include <string>
#include <vector>

#include "catalog/database.hpp"
#include "common/error.hpp"
#include "diom/wire.hpp"
#include "fuzz_entry.hpp"
#include "persist/snapshot.hpp"
#include "targets.hpp"

namespace cq::fuzz {

namespace {

using diom::Bytes;

void check_relation(const Bytes& payload) {
  const auto schema = rel::Schema::of({{"i", rel::ValueType::kInt},
                                       {"s", rel::ValueType::kString},
                                       {"d", rel::ValueType::kDouble}});
  rel::Relation decoded;
  try {
    decoded = diom::decode_relation(payload, schema);
  } catch (const common::Error&) {
    return;
  }
  if (diom::encode_relation(decoded) != payload) {
    violation("wire_decode", "relation decode/encode not canonical",
              decoded.to_string().c_str());
  }
}

void check_deltas(const Bytes& payload) {
  std::vector<delta::DeltaRow> rows;
  try {
    rows = diom::decode_deltas(payload, /*arity=*/2);
  } catch (const common::Error&) {
    return;
  }
  if (diom::encode_deltas(rows) != payload) {
    violation("wire_decode", "delta decode/encode not canonical",
              std::to_string(rows.size()).c_str());
  }
}

void check_manifest(const Bytes& payload) {
  std::vector<persist::CqManifestEntry> entries;
  try {
    entries = persist::decode_manifest(payload);
  } catch (const common::Error&) {
    return;
  }
  if (persist::encode_manifest(entries) != payload) {
    violation("wire_decode", "manifest decode/encode not canonical",
              std::to_string(entries.size()).c_str());
  }
}

void check_database(const Bytes& payload) {
  try {
    const cat::Database db = persist::load_database(payload);
    // Save/reload: the reloaded database must describe the same tables.
    const Bytes saved = persist::save_database(db);
    const cat::Database again = persist::load_database(saved);
    if (db.table_names() != again.table_names()) {
      violation("wire_decode", "database save/load changed the table set", "");
    }
    for (const auto& name : db.table_names()) {
      if (!db.table(name).equal_multiset(again.table(name))) {
        violation("wire_decode", "database save/load changed table contents",
                  name.c_str());
      }
    }
  } catch (const common::Error&) {
  }
}

void check_snapshot(const Bytes& payload) {
  try {
    (void)persist::decode_snapshot(payload);
  } catch (const common::Error&) {
  }
}

}  // namespace

int wire_decode_target(const std::uint8_t* data, std::size_t size) {
  if (size == 0) return 0;
  const std::uint8_t route = data[0];
  const Bytes payload(data + 1, data + size);
  switch (route % 5) {
    case 0: check_relation(payload); break;
    case 1: check_deltas(payload); break;
    case 2: check_manifest(payload); break;
    case 3: check_database(payload); break;
    default: check_snapshot(payload); break;
  }
  return 0;
}

}  // namespace cq::fuzz

CQ_FUZZ_ENTRY(cq::fuzz::wire_decode_target)
