// Replay driver: links against one fuzz_<name>.cpp object in builds
// without -fsanitize=fuzzer (GCC tier-1, the ASan lane) and feeds every
// file of the directories/files named on the command line through the
// target. This is what makes the corpus a deterministic regression suite:
// ctest registers `fuzz_replay_<name> corpus/<name> regressions/<name>`
// for every target (see fuzz/CMakeLists.txt).
//
// Exit status: 0 when every input was replayed (an oracle violation aborts
// before returning), 2 on usage/IO errors.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data, std::size_t size);

namespace {

namespace fs = std::filesystem;

bool read_file(const fs::path& path, std::vector<std::uint8_t>& out) {
  std::FILE* f = std::fopen(path.string().c_str(), "rb");
  if (f == nullptr) return false;
  out.clear();
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    out.insert(out.end(), buf, buf + n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

/// Regular files of `dir`, dotfiles skipped, sorted by name so replays are
/// deterministic across filesystems.
std::vector<fs::path> collect(const fs::path& root) {
  std::vector<fs::path> files;
  if (fs::is_directory(root)) {
    for (const auto& entry : fs::directory_iterator(root)) {
      if (!entry.is_regular_file()) continue;
      const std::string name = entry.path().filename().string();
      if (!name.empty() && name[0] == '.') continue;
      files.push_back(entry.path());
    }
    std::sort(files.begin(), files.end());
  } else if (fs::is_regular_file(root)) {
    files.push_back(root);
  }
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-dir-or-file>...\n", argv[0]);
    return 2;
  }
  std::size_t replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const fs::path root(argv[i]);
    if (!fs::exists(root)) {
      // Missing regression dirs are fine (no crashers promoted yet).
      continue;
    }
    for (const fs::path& file : collect(root)) {
      std::vector<std::uint8_t> bytes;
      if (!read_file(file, bytes)) {
        std::fprintf(stderr, "cannot read %s\n", file.string().c_str());
        return 2;
      }
      std::printf("replay %s (%zu bytes)\n", file.string().c_str(), bytes.size());
      std::fflush(stdout);
      (void)LLVMFuzzerTestOneInput(bytes.data(), bytes.size());
      ++replayed;
    }
  }
  std::printf("replayed %zu inputs\n", replayed);
  return 0;
}
