// SQL front-end target: the input bytes ARE the SQL text (so the fuzz
// dictionary fuzz/dict/sql.dict and corpus seeds stay human-readable).
//
// Oracles:
//   1. parse_query / parse_predicate either succeed or throw a typed
//      cq::common::Error — any other escape is a crash.
//   2. Render/reparse fixed point: a validated parse renders via
//      to_string() to SQL that reparses to the identical rendering.
#include <string>

#include "common/error.hpp"
#include "fuzz_entry.hpp"
#include "query/parser.hpp"
#include "targets.hpp"

namespace cq::fuzz {

namespace {

constexpr std::size_t kMaxInput = 4096;  // parser is O(n); keep execs/s high

void check_query_round_trip(const std::string& text) {
  qry::SpjQuery query;
  try {
    query = qry::parse_query(text);
    query.validate();
  } catch (const common::Error&) {
    return;  // rejected input: fine
  }
  const std::string rendered = query.to_string();
  try {
    const qry::SpjQuery reparsed = qry::parse_query(rendered);
    reparsed.validate();
    const std::string rendered2 = reparsed.to_string();
    if (rendered2 != rendered) {
      violation("sql_parser", "render/reparse not a fixed point",
                ("first:  " + rendered + "\nsecond: " + rendered2).c_str());
    }
  } catch (const common::Error& e) {
    violation("sql_parser", "rendering of a valid query failed to reparse",
              (rendered + "\nerror: " + e.what()).c_str());
  }
}

void check_predicate_round_trip(const std::string& text) {
  alg::ExprPtr parsed;
  try {
    parsed = qry::parse_predicate(text);
  } catch (const common::Error&) {
    return;
  }
  const std::string rendered = parsed->to_string();
  try {
    const std::string rendered2 = qry::parse_predicate(rendered)->to_string();
    if (rendered2 != rendered) {
      violation("sql_parser", "predicate render/reparse not a fixed point",
                ("first:  " + rendered + "\nsecond: " + rendered2).c_str());
    }
  } catch (const common::Error& e) {
    violation("sql_parser", "rendering of a valid predicate failed to reparse",
              (rendered + "\nerror: " + e.what()).c_str());
  }
}

}  // namespace

int sql_parser_target(const std::uint8_t* data, std::size_t size) {
  if (size > kMaxInput) size = kMaxInput;
  const std::string text(reinterpret_cast<const char*>(data), size);
  check_query_round_trip(text);
  check_predicate_round_trip(text);
  return 0;
}

}  // namespace cq::fuzz

CQ_FUZZ_ENTRY(cq::fuzz::sql_parser_target)
