// The five fuzz targets, as plain functions. Each returns 0 (libFuzzer
// convention) or aborts on an oracle violation.
#pragma once

#include <cstddef>
#include <cstdint>

namespace cq::fuzz {

/// SQL text -> lexer -> parser -> validate -> render -> reparse fixed point.
int sql_parser_target(const std::uint8_t* data, std::size_t size);

/// Byte-built expression trees evaluated over byte-built tuples: typed
/// errors only, deterministic results, overflow -> NULL (never UB).
int expr_eval_target(const std::uint8_t* data, std::size_t size);

/// Raw bytes into the persist/wire decoders; successful decodes must
/// re-encode canonically.
int wire_decode_target(const std::uint8_t* data, std::size_t size);

/// Structure-aware transaction script driving DRA vs full recompute
/// (tests/testing/dra_script.hpp); any divergence aborts.
int dra_oracle_target(const std::uint8_t* data, std::size_t size);

/// Schedule-perturbation determinism: 8-byte seed + DRA script; the script
/// runs sequentially and then parallel under seeded yields/sleeps at every
/// lock/dispatch point — digests must match bit for bit.
int schedule_target(const std::uint8_t* data, std::size_t size);

}  // namespace cq::fuzz
