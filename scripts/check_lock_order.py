#!/usr/bin/env python3
"""Static lock-hierarchy checker — layer 2 of the lock-discipline stack.

Cross-checks three artifacts that must agree:

  1. The LockRank enum in src/common/lock_order.hpp (the authoritative
     numeric hierarchy).
  2. Every named cq::common::Mutex construction site in src/ and
     examples/ — engine-lifetime mutexes must declare BOTH a site name
     and a LockRank (`Mutex mu_{"site", LockRank::kX};`); the rank token
     must exist in the enum; a site name reused anywhere in the tree must
     reuse the same rank (sites are lockdep-style lock classes).
  3. The checked-in manifest docs/lock-hierarchy.md — every ranked code
     site appears there with the same rank and declaring file, and every
     manifest row still corresponds to a live code site (no stale rows).

Additionally, any CQ_ACQUIRED_BEFORE(target) annotation on a ranked mutex
is checked against the numeric hierarchy: the annotated mutex must rank
strictly BELOW its target, otherwise the declared static order and the
runtime checker would disagree about the same pair.

Usage:
  scripts/check_lock_order.py             check the tree; exit 0 clean, 1 dirty
  scripts/check_lock_order.py --self-test seed violations, assert detection
"""

from __future__ import annotations

import re
import sys
import tempfile
from dataclasses import dataclass
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

ENUM_PATH = "src/common/lock_order.hpp"
MANIFEST_PATH = "docs/lock-hierarchy.md"
SCAN_ROOTS = ("src", "examples")

ENUM_RE = re.compile(r"\bk(\w+)\s*=\s*(\d+)\s*,")
# A named Mutex construction, possibly spanning a line break between the
# site string and the rank:  Mutex mu_{"site", LockRank::kX};
SITE_RE = re.compile(
    r"\bMutex\s+(\w+)\s*\{\s*\"([^\"]+)\"\s*"
    r"(?:,\s*(?:[A-Za-z_]\w*::)*LockRank::k(\w+)\s*)?\}",
    re.DOTALL,
)
ACQUIRED_BEFORE_RE = re.compile(
    r"\bMutex\s+(\w+)\s+CQ_ACQUIRED_BEFORE\(\s*(\w+)\s*\)"
)
# Manifest rows: | 10 | `engine` | `examples/cqshell.cpp` | rationale |
MANIFEST_ROW_RE = re.compile(
    r"^\|\s*(\d+)\s*\|\s*`([^`]+)`\s*\|\s*`([^`]+)`\s*\|", re.MULTILINE
)


@dataclass
class CodeSite:
    name: str          # site string literal
    rank_token: str    # enum token ("EventLog") or "" when undeclared
    file: str          # repo-relative declaring file
    line: int


def parse_enum(repo: Path) -> dict[str, int]:
    path = repo / ENUM_PATH
    if not path.is_file():
        return {}
    return {m.group(1): int(m.group(2)) for m in ENUM_RE.finditer(path.read_text())}


def parse_sites(repo: Path) -> tuple[list[CodeSite], list[tuple[str, int, str, str]]]:
    """All named Mutex construction sites + CQ_ACQUIRED_BEFORE pairs."""
    sites: list[CodeSite] = []
    before_pairs: list[tuple[str, int, str, str]] = []  # file, line, mutex, target
    for root in SCAN_ROOTS:
        base = repo / root
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in (".hpp", ".cpp", ".h"):
                continue
            text = path.read_text()
            rel = path.relative_to(repo).as_posix()
            for m in SITE_RE.finditer(text):
                line = text[: m.start()].count("\n") + 1
                sites.append(CodeSite(m.group(2), m.group(3) or "", rel, line))
            for m in ACQUIRED_BEFORE_RE.finditer(text):
                line = text[: m.start()].count("\n") + 1
                before_pairs.append((rel, line, m.group(1), m.group(2)))
    return sites, before_pairs


def parse_manifest(repo: Path) -> dict[str, tuple[int, str]]:
    """site -> (rank, declaring file) from docs/lock-hierarchy.md."""
    path = repo / MANIFEST_PATH
    if not path.is_file():
        return {}
    return {
        m.group(2): (int(m.group(1)), m.group(3))
        for m in MANIFEST_ROW_RE.finditer(path.read_text())
    }


def check_tree(repo: Path) -> list[str]:
    errors: list[str] = []
    ranks = parse_enum(repo)
    if not ranks:
        errors.append(f"{ENUM_PATH}: no LockRank enumerators found")
        return errors
    sites, before_pairs = parse_sites(repo)
    manifest = parse_manifest(repo)

    # Sites exempt from the rank + manifest requirements: test scaffolding
    # ranks (kLeaf / kUnranked) never claim a layer of the real hierarchy.
    exempt_tokens = {"Leaf", "Unranked", ""}

    seen_rank: dict[str, tuple[str, str]] = {}  # site -> (token, where)
    for s in sites:
        where = f"{s.file}:{s.line}"
        if s.rank_token == "":
            errors.append(
                f"{where}: site \"{s.name}\": engine-lifetime mutex declares a "
                "site name but no LockRank — add `lockorder::LockRank::kX` "
                "and a docs/lock-hierarchy.md row"
            )
            continue
        if s.rank_token not in ranks:
            errors.append(
                f"{where}: site \"{s.name}\": unknown rank token "
                f"LockRank::k{s.rank_token} (not in {ENUM_PATH})"
            )
            continue
        if s.name in seen_rank and seen_rank[s.name][0] != s.rank_token:
            errors.append(
                f"{where}: site \"{s.name}\": re-declared with rank "
                f"k{s.rank_token}, but k{seen_rank[s.name][0]} at "
                f"{seen_rank[s.name][1]} — one site, one rank"
            )
        seen_rank.setdefault(s.name, (s.rank_token, where))

        if s.rank_token in exempt_tokens:
            continue
        if s.name not in manifest:
            errors.append(
                f"{where}: site \"{s.name}\" (rank {ranks[s.rank_token]}) is "
                f"missing from {MANIFEST_PATH} — document its layer and "
                "rationale"
            )
            continue
        man_rank, man_file = manifest[s.name]
        if man_rank != ranks[s.rank_token]:
            errors.append(
                f"{where}: site \"{s.name}\": code rank {ranks[s.rank_token]} "
                f"(k{s.rank_token}) != manifest rank {man_rank} — "
                f"{MANIFEST_PATH} has drifted"
            )
        if man_file != s.file:
            errors.append(
                f"{where}: site \"{s.name}\": declared in {s.file} but "
                f"{MANIFEST_PATH} says {man_file}"
            )

    # Stale manifest rows: documented site no longer constructed anywhere.
    code_names = {s.name for s in sites}
    for name in manifest:
        if name not in code_names:
            errors.append(
                f"{MANIFEST_PATH}: site \"{name}\" documented but no longer "
                "constructed anywhere in src/ or examples/ — remove the row"
            )

    # CQ_ACQUIRED_BEFORE(target) must agree with the numeric hierarchy
    # wherever both members resolve to ranked sites in the same file.
    member_rank: dict[tuple[str, str], int] = {}
    for s in sites:
        if s.rank_token in ranks and s.rank_token not in exempt_tokens:
            # Map the member variable name via its declaration text match.
            member_rank[(s.file, s.name)] = ranks[s.rank_token]
    for file, line, mutex, target in before_pairs:
        # Resolve by declaration order in the same file: find ranks of the
        # sites whose member identifiers match.
        decls = {
            m.group(1): m.group(3) or ""
            for m in SITE_RE.finditer((repo / file).read_text())
        }
        r_mutex = ranks.get(decls.get(mutex, ""), None)
        r_target = ranks.get(decls.get(target, ""), None)
        if r_mutex is not None and r_target is not None and r_mutex >= r_target:
            errors.append(
                f"{file}:{line}: CQ_ACQUIRED_BEFORE({target}) on {mutex} "
                f"contradicts the rank hierarchy ({r_mutex} >= {r_target}) — "
                "the static and runtime checkers would disagree"
            )

    return errors


# --------------------------------------------------------------- self-test --

GOOD_ENUM = """
enum class LockRank : std::uint16_t {
  kUnranked = 0,
  kOuter = 10,
  kInner = 20,
  kLeaf = 90,
};
"""

GOOD_SITE = 'struct A { Mutex mu_{"alpha", lockorder::LockRank::kOuter}; };\n'
GOOD_MANIFEST = "| rank | site | declared in | rationale |\n|--|--|--|--|\n| 10 | `alpha` | `src/a.hpp` | test |\n"


def scratch_tree(tmp: Path, *, site: str = GOOD_SITE,
                 manifest: str = GOOD_MANIFEST) -> Path:
    (tmp / "src/common").mkdir(parents=True)
    (tmp / "docs").mkdir()
    (tmp / "src/common/lock_order.hpp").write_text(GOOD_ENUM)
    (tmp / "src/a.hpp").write_text(site)
    (tmp / "docs/lock-hierarchy.md").write_text(manifest)
    return tmp


def self_test() -> int:
    failures = 0

    def expect(label: str, errors: list[str], needle: str) -> None:
        nonlocal failures
        hits = [e for e in errors if needle in e]
        if hits:
            print(f"self-test: {label}: detected ({hits[0]})")
        else:
            print(f"self-test: {label}: NOT DETECTED (got {errors})", file=sys.stderr)
            failures += 1

    with tempfile.TemporaryDirectory() as d:
        clean = check_tree(scratch_tree(Path(d)))
        if clean:
            print(f"self-test: clean tree flagged: {clean}", file=sys.stderr)
            failures += 1
        else:
            print("self-test: clean tree: no findings")

    with tempfile.TemporaryDirectory() as d:
        errors = check_tree(scratch_tree(
            Path(d), site='struct A { Mutex mu_{"alpha"}; };\n'))
        expect("missing-rank", errors, "no LockRank")

    with tempfile.TemporaryDirectory() as d:
        errors = check_tree(scratch_tree(
            Path(d),
            site='struct A { Mutex mu_{"beta", lockorder::LockRank::kOuter}; };\n'))
        expect("missing-manifest-row", errors, "missing from docs/lock-hierarchy.md")
        expect("stale-manifest-row", errors, "no longer constructed")

    with tempfile.TemporaryDirectory() as d:
        errors = check_tree(scratch_tree(
            Path(d),
            site='struct A { Mutex mu_{"alpha", lockorder::LockRank::kInner}; };\n'))
        expect("rank-drift", errors, "manifest rank 10")

    with tempfile.TemporaryDirectory() as d:
        errors = check_tree(scratch_tree(
            Path(d),
            site='struct A { Mutex mu_{"alpha", lockorder::LockRank::kBogus}; };\n'))
        expect("unknown-token", errors, "unknown rank token")

    with tempfile.TemporaryDirectory() as d:
        errors = check_tree(scratch_tree(
            Path(d),
            site=('struct A {\n'
                  '  Mutex a_{"alpha", lockorder::LockRank::kOuter};\n'
                  '  Mutex z_{"zeta", lockorder::LockRank::kInner};\n'
                  '};\n'
                  'struct B { Mutex b_{"alpha", lockorder::LockRank::kInner}; };\n'),
            manifest=(GOOD_MANIFEST + "| 20 | `zeta` | `src/a.hpp` | test |\n")))
        expect("one-site-one-rank", errors, "one site, one rank")

    with tempfile.TemporaryDirectory() as d:
        # The seeded inversion: declared static order contradicting ranks.
        errors = check_tree(scratch_tree(
            Path(d),
            site=('struct A {\n'
                  '  Mutex inner_ CQ_ACQUIRED_BEFORE(outer_);\n'
                  '  Mutex inner_x_{"zeta", lockorder::LockRank::kInner};\n'
                  '  Mutex outer_{"alpha", lockorder::LockRank::kOuter};\n'
                  '  Mutex inner_{"zeta", lockorder::LockRank::kInner};\n'
                  '};\n'),
            manifest=(GOOD_MANIFEST + "| 20 | `zeta` | `src/a.hpp` | test |\n")))
        expect("acquired-before-inversion", errors, "contradicts the rank hierarchy")

    return 1 if failures else 0


def main(argv: list[str]) -> int:
    if "--self-test" in argv:
        return self_test()
    errors = check_tree(REPO)
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"check_lock_order: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print("check_lock_order: clean "
          f"({len(parse_manifest(REPO))} manifest rows cross-checked)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
