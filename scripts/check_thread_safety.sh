#!/usr/bin/env bash
# Clang thread-safety analysis gate, two halves:
#
#   1. POSITIVE: every library translation unit compiles warning-clean
#      under `clang++ -Wthread-safety -Werror=thread-safety` — all guarded
#      state is touched with its mutex held.
#   2. NEGATIVE: tests/negative/thread_safety_violation.cpp (guarded field
#      touched lock-free) must FAIL to compile — proving the annotations
#      actually fire and have not been compiled out.
#   3. NEGATIVE (lock order): tests/negative/lock_order_violation.cpp
#      declares a CQ_ACQUIRED_BEFORE order and acquires in the opposite
#      order; under -Wthread-safety-beta that must also fail to compile.
#      (The same inversion is caught at runtime by common/lock_order.hpp
#      and dynamically by fuzz_schedule — this is the static leg.)
#
#   scripts/check_thread_safety.sh [--require]
#
# GCC expands the annotations to nothing, so this check needs clang.
# Without clang the script SKIPS with exit 0 (local GCC-only machines);
# pass --require (CI does) to fail instead.
set -euo pipefail

cd "$(dirname "$0")/.."

require=0
[[ "${1:-}" == "--require" ]] && require=1

cxx=""
for cand in clang++ clang++-20 clang++-19 clang++-18 clang++-17 clang++-16 \
            clang++-15 clang++-14; do
  if command -v "$cand" >/dev/null 2>&1; then
    cxx="$cand"
    break
  fi
done
if [[ -z "$cxx" ]]; then
  if [[ "$require" == 1 ]]; then
    echo "check_thread_safety: clang++ not found and --require given" >&2
    exit 1
  fi
  echo "check_thread_safety: clang++ not installed; skipping (pass --require to fail instead)"
  exit 0
fi

# -DCQ_LOCK_ORDER_CHECKS=1 so the analysis also sees the instrumented
# lock()/unlock() bodies the Debug/tsan/lockcheck lanes actually run.
flags=(-std=c++20 -fsyntax-only -Isrc -DCQ_LOCK_ORDER_CHECKS=1
       -Wthread-safety -Werror=thread-safety)

echo "check_thread_safety: positive pass ($cxx, library sources)"
status=0
while IFS= read -r f; do
  if ! "$cxx" "${flags[@]}" "$f"; then
    echo "check_thread_safety: FAIL: $f has thread-safety warnings" >&2
    status=1
  fi
done < <(find src -name '*.cpp' | sort)
[[ "$status" == 0 ]] || exit "$status"
echo "check_thread_safety: positive pass clean"

echo "check_thread_safety: negative pass (violation file must not compile)"
neg=tests/negative/thread_safety_violation.cpp
if out=$("$cxx" "${flags[@]}" "$neg" 2>&1); then
  echo "check_thread_safety: FAIL: $neg compiled — annotations are dead" >&2
  exit 1
fi
if ! grep -q "thread-safety" <<<"$out"; then
  echo "check_thread_safety: FAIL: $neg failed for the wrong reason:" >&2
  echo "$out" >&2
  exit 1
fi
echo "check_thread_safety: negative pass rejected as expected"

echo "check_thread_safety: lock-order negative pass (declared-order inversion)"
neg_order=tests/negative/lock_order_violation.cpp
beta_flags=("${flags[@]}" -Wthread-safety-beta -Werror=thread-safety-beta)
if out=$("$cxx" "${beta_flags[@]}" "$neg_order" 2>&1); then
  echo "check_thread_safety: FAIL: $neg_order compiled — acquired_before is dead" >&2
  exit 1
fi
if ! grep -q "thread-safety" <<<"$out"; then
  echo "check_thread_safety: FAIL: $neg_order failed for the wrong reason:" >&2
  echo "$out" >&2
  exit 1
fi
echo "check_thread_safety: lock-order negative pass rejected as expected"
echo "check_thread_safety: OK"
