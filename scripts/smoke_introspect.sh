#!/usr/bin/env sh
# Smoke-test the introspection HTTP server end to end: start a scripted
# cqshell with tracing + lock profiling + lineage collection + a 2-lane
# pool and SERVE, scrape /metrics, /healthz, /events (with ?since=
# cursoring), /stats, /lineage, /lockgraph and /trace?trace_id= with curl,
# regex-validate the Prometheus exposition (>=1 counter, >=1 gauge, a
# histogram family with a +Inf bucket, a strict line-format pass, and the
# commit-pipeline / pool / lock-contention families this engine
# publishes), and strict-shape-check the lineage JSON. Used by run_all.sh
# and CI.
set -eu

cd "$(dirname "$0")/.."
BIN=build/examples/cqshell
[ -x "$BIN" ] || { echo "smoke_introspect: $BIN not built" >&2; exit 1; }

LOG=$(mktemp)
PORT_FILE=$(mktemp)
trap 'kill $FEED_PID 2>/dev/null || true; rm -f "$LOG" "$PORT_FILE"' EXIT

# Keep stdin open after SERVE so the shell (and its server thread) stays
# alive while we scrape; port 0 lets the OS pick a free port.
(
  printf 'TRACE ON\n'
  printf 'PROFILE ON\n'
  printf 'LINEAGE ON 4\n'
  printf 'THREADS 2\n'
  printf 'CREATE TABLE Stocks (name STRING, price INT)\n'
  printf "INSERT INTO Stocks VALUES ('DEC', 150)\n"
  printf 'INSTALL watch TRIGGER ONCHANGE AS SELECT * FROM Stocks WHERE price > 120\n'
  printf "INSERT INTO Stocks VALUES ('MAC', 130)\n"
  printf 'POLL\n'
  printf 'SERVE 0\n'
  sleep 15
) | "$BIN" > "$LOG" 2>&1 &
FEED_PID=$!

PORT=""
i=0
while [ $i -lt 100 ]; do
  PORT=$(sed -n 's|.*serving introspection on http://127\.0\.0\.1:\([0-9]*\).*|\1|p' "$LOG" | head -n 1)
  [ -n "$PORT" ] && break
  i=$((i + 1))
  sleep 0.1
done
if [ -z "$PORT" ]; then
  echo "smoke_introspect: server never announced a port; log:" >&2
  cat "$LOG" >&2
  exit 1
fi
echo "smoke_introspect: scraping http://127.0.0.1:$PORT"

METRICS=$(curl -sf "http://127.0.0.1:$PORT/metrics")

fail() {
  echo "smoke_introspect: FAIL — $1" >&2
  printf '%s\n' "$METRICS" | head -n 40 >&2
  exit 1
}

printf '%s\n' "$METRICS" | grep -Eq '^# TYPE cq_[a-z0-9_]+ counter$' \
  || fail "no counter family in /metrics"
printf '%s\n' "$METRICS" | grep -Eq '^cq_[a-z0-9_]+_total(\{[^}]*\})? [0-9]+$' \
  || fail "no counter sample in /metrics"
printf '%s\n' "$METRICS" | grep -Eq '^cq_delta_rows\{table="Stocks"\} [0-9]+$' \
  || fail "no cq_delta_rows gauge for table Stocks"
printf '%s\n' "$METRICS" | grep -Eq '^# TYPE cq_[a-z0-9_]+ histogram$' \
  || fail "no histogram family in /metrics"
printf '%s\n' "$METRICS" | grep -Eq '^cq_[a-z0-9_]+_bucket\{le="\+Inf"\} [0-9]+$' \
  || fail "no +Inf histogram bucket in /metrics"

# Strict exposition-format pass: every line must be either a # TYPE
# declaration or a sample `name{labels} value` — a malformed line anywhere
# breaks Prometheus ingestion of the whole scrape, so reject the lot.
BAD=$(printf '%s\n' "$METRICS" \
  | grep -Ev '^# TYPE cq_[a-zA-Z0-9_]+ (counter|gauge|histogram)$' \
  | grep -Ev '^cq_[a-zA-Z0-9_]+(\{[a-zA-Z0-9_]+="[^"]*"(,[a-zA-Z0-9_]+="[^"]*")*\})? -?[0-9]+$' \
  | grep -Ev '^$' || true)
[ -z "$BAD" ] || fail "malformed exposition line(s): $(printf '%s' "$BAD" | head -n 3)"

# The observability PR's families: commit pipeline phases, pool queueing
# and lane accounting, lock-contention profiling (PROFILE ON above), and
# the dropped totals rendered as counters so rate() works.
printf '%s\n' "$METRICS" | grep -Eq '^cq_commit_to_notify_us_bucket' \
  || fail "no commit_to_notify_us histogram"
printf '%s\n' "$METRICS" | grep -Eq '^cq_pool_task_wait_us_bucket' \
  || fail "no pool_task_wait_us histogram (THREADS 2 should start the pool)"
printf '%s\n' "$METRICS" | grep -Eq '^cq_pool_lane_busy_us_total\{lane="[^"]+"\} [0-9]+$' \
  || fail "no per-lane busy-time counters"
printf '%s\n' "$METRICS" | grep -Eq '^cq_pool_lane_utilization_pct\{lane="[^"]+"\} -?[0-9]+$' \
  || fail "no per-lane utilization gauges"
printf '%s\n' "$METRICS" | grep -Eq '^cq_lock_acquisitions_total\{site="[^"]+"\} [0-9]+$' \
  || fail "no lock-profiling acquisition counters (PROFILE ON should enable them)"
printf '%s\n' "$METRICS" | grep -Eq '^cq_lock_wait_us_bucket\{site="[^"]+",le="\+Inf"\} [0-9]+$' \
  || fail "no lock wait-time histogram"
printf '%s\n' "$METRICS" | grep -Eq '^# TYPE cq_trace_ring_dropped_total counter$' \
  || fail "trace_ring_dropped not rendered as a counter"
printf '%s\n' "$METRICS" | grep -Eq '^# TYPE cq_event_log_dropped_total counter$' \
  || fail "event_log_dropped not rendered as a counter"

HEALTH=$(curl -sf "http://127.0.0.1:$PORT/healthz")
printf '%s\n' "$HEALTH" | grep -q '"status":"ok"' \
  || { echo "smoke_introspect: FAIL — /healthz not ok: $HEALTH" >&2; exit 1; }

EVENTS=$(curl -sf "http://127.0.0.1:$PORT/events?n=5")
printf '%s\n' "$EVENTS" | head -n 1 | grep -q '"kind"' \
  || { echo "smoke_introspect: FAIL — /events returned no journal lines" >&2; exit 1; }
printf '%s\n' "$EVENTS" | head -n 1 | grep -q '"trace_id"' \
  || { echo "smoke_introspect: FAIL — /events lines missing trace_id" >&2; exit 1; }

STATS=$(curl -sf "http://127.0.0.1:$PORT/stats") \
  || { echo "smoke_introspect: FAIL — /stats unreachable" >&2; exit 1; }
printf '%s\n' "$STATS" | grep -q '"last_seq":' \
  || { echo "smoke_introspect: FAIL — /stats missing events.last_seq: $STATS" >&2; exit 1; }

# ?since= must be an incremental cursor: asking for events after the
# journal's last_seq yields an empty page.
LAST_SEQ=$(printf '%s' "$STATS" | sed -n 's/.*"last_seq":\([0-9]*\).*/\1/p')
[ -n "$LAST_SEQ" ] \
  || { echo "smoke_introspect: FAIL — could not parse last_seq from /stats" >&2; exit 1; }
SINCE=$(curl -sf "http://127.0.0.1:$PORT/events?n=100&since=$LAST_SEQ")
[ -z "$SINCE" ] \
  || { echo "smoke_introspect: FAIL — /events?since=last_seq not empty: $SINCE" >&2; exit 1; }

# Lineage endpoint, strict JSON shape. The index form lists per-CQ rings;
# the per-CQ form returns records with rows[] each citing base deltas by
# (txn, relation, seq), plus the fan-in histogram.
LINEAGE_INDEX=$(curl -sf "http://127.0.0.1:$PORT/lineage")
for key in '"retention":' '"bytes":' '"cqs":' '"cq":"watch"' '"last_sequence":'; do
  printf '%s\n' "$LINEAGE_INDEX" | grep -q "$key" \
    || { echo "smoke_introspect: FAIL — /lineage index missing $key: $LINEAGE_INDEX" >&2; exit 1; }
done
LINEAGE=$(curl -sf "http://127.0.0.1:$PORT/lineage?cq=watch&n=4")
for key in '"cq":"watch"' '"records":' '"sequence":' '"trace_id":' '"rows":' \
           '"inserted":' '"fanin":' '"sources":' '"txn":' '"relation":"Stocks"' \
           '"seq":'; do
  printf '%s\n' "$LINEAGE" | grep -q "$key" \
    || { echo "smoke_introspect: FAIL — /lineage?cq=watch missing $key: $LINEAGE" >&2; exit 1; }
done
curl -sf "http://127.0.0.1:$PORT/lineage?cq=nonexistent" | grep -q '"records":\[\]' \
  || { echo "smoke_introspect: FAIL — /lineage for unknown CQ not an empty record list" >&2; exit 1; }

PROFILE=$(curl -sf "http://127.0.0.1:$PORT/profile")
printf '%s\n' "$PROFILE" | grep -q '"lock_contention"' \
  || { echo "smoke_introspect: FAIL — /profile missing lock_contention: $PROFILE" >&2; exit 1; }
printf '%s\n' "$PROFILE" | grep -q '"slowest_commits"' \
  || { echo "smoke_introspect: FAIL — /profile missing slowest_commits" >&2; exit 1; }

# /lockgraph is well-formed JSON in every build flavor; with the
# lock-order checker compiled in it also carries real sites and edges,
# and the DOT rendering is a digraph either way.
LOCKGRAPH=$(curl -sf "http://127.0.0.1:$PORT/lockgraph")
printf '%s\n' "$LOCKGRAPH" | grep -q '"enabled":' \
  || { echo "smoke_introspect: FAIL — /lockgraph missing enabled flag: $LOCKGRAPH" >&2; exit 1; }
printf '%s\n' "$LOCKGRAPH" | grep -q '"sites":' \
  || { echo "smoke_introspect: FAIL — /lockgraph missing sites array" >&2; exit 1; }
curl -sf "http://127.0.0.1:$PORT/lockgraph?format=dot" | grep -q 'digraph lockorder' \
  || { echo "smoke_introspect: FAIL — /lockgraph?format=dot not a digraph" >&2; exit 1; }

# The trace endpoint accepts a trace_id filter; an unknown id must still be
# a well-formed (metadata-only) chrome-trace event array, not an error.
TRACE=$(curl -sf "http://127.0.0.1:$PORT/trace?trace_id=999999999")
case "$TRACE" in
  \[*) ;;
  *) echo "smoke_introspect: FAIL — /trace?trace_id= not a chrome trace array" >&2; exit 1 ;;
esac
printf '%s\n' "$TRACE" | grep -q '"process_name"' \
  || { echo "smoke_introspect: FAIL — /trace?trace_id= missing metadata events" >&2; exit 1; }

echo "smoke_introspect: OK (metrics, healthz, events+since, stats, lineage, profile, lockgraph, trace filter)"

# One plain (non-TSan) pass of the concurrency stress binary: multi-thread
# scrapes against a live engine loop, torn-JSON and counter checks. The
# TSan lane runs the same binary instrumented; this catches logic-level
# breakage cheaply.
STRESS=build/tests/concurrency_test
if [ -x "$STRESS" ]; then
  echo "smoke_introspect: running concurrency stress (plain mode)"
  "$STRESS" --gtest_brief=1 \
    || { echo "smoke_introspect: FAIL — concurrency stress failed" >&2; exit 1; }
else
  echo "smoke_introspect: $STRESS not built; skipping concurrency stress"
fi
