#!/usr/bin/env bash
# Time-boxed libFuzzer driver for the targets in fuzz/.
#
#   scripts/run_fuzz.sh [-t seconds] [-j jobs] [target ...]
#
# Runs each requested target (default: all five) for the time box against
# its checked-in seed corpus plus a scratch working corpus, then:
#   * triages: any crash-*/timeout-*/oom-* artifact is minimized
#     (-minimize_crash) and reported; exit 1 when new crashers exist,
#   * minimizes: merges the working corpus back over the seeds (-merge=1)
#     and prints which new seed files are worth committing.
#
# Requires a build with the `fuzz` preset (clang + libFuzzer):
#   cmake --preset fuzz && cmake --build build-fuzz -j
#
# CI smoke mode is just a small time box: scripts/run_fuzz.sh -t 60.
set -euo pipefail

REPO="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${BUILD_DIR:-$REPO/build-fuzz}"
TIME_BOX=300
JOBS=1
ALL_TARGETS=(sql_parser expr_eval wire_decode dra_oracle schedule)

while getopts "t:j:h" opt; do
  case "$opt" in
    t) TIME_BOX="$OPTARG" ;;
    j) JOBS="$OPTARG" ;;
    h) grep '^#' "$0" | sed 's/^# \{0,1\}//'; exit 0 ;;
    *) exit 2 ;;
  esac
done
shift $((OPTIND - 1))
TARGETS=("${@:-${ALL_TARGETS[@]}}")

if [[ ! -d "$BUILD_DIR" ]]; then
  echo "error: $BUILD_DIR missing — build the 'fuzz' preset first:" >&2
  echo "  cmake --preset fuzz && cmake --build build-fuzz -j" >&2
  exit 2
fi

status=0
for target in "${TARGETS[@]}"; do
  bin="$BUILD_DIR/fuzz/fuzz_$target"
  if [[ ! -x "$bin" ]]; then
    echo "error: $bin not built" >&2
    status=2
    continue
  fi
  seed_dir="$REPO/fuzz/corpus/$target"
  regress_dir="$REPO/fuzz/regressions/$target"
  work_dir="$BUILD_DIR/fuzz-work/$target"
  artifact_dir="$BUILD_DIR/fuzz-artifacts/$target"
  mkdir -p "$work_dir" "$artifact_dir"

  dict_args=()
  [[ "$target" == sql_parser && -f "$REPO/fuzz/dict/sql.dict" ]] &&
    dict_args=(-dict="$REPO/fuzz/dict/sql.dict")

  echo "=== fuzz_$target: ${TIME_BOX}s, jobs=$JOBS ==="
  # Regression crashers replay first (fast fail on a reintroduced bug).
  if [[ -d "$regress_dir" && -n "$(ls -A "$regress_dir" 2>/dev/null)" ]]; then
    "$bin" "${dict_args[@]}" "$regress_dir"/* >/dev/null
  fi
  set +e
  "$bin" "${dict_args[@]}" \
    -max_total_time="$TIME_BOX" -jobs="$JOBS" -workers="$JOBS" \
    -print_final_stats=1 -artifact_prefix="$artifact_dir/" \
    "$work_dir" "$seed_dir"
  rc=$?
  set -e
  if [[ $rc -ne 0 ]]; then
    echo "fuzz_$target exited with $rc — triaging artifacts" >&2
    status=1
  fi

  # Triage: minimize every crash artifact so the reproducer committed to
  # fuzz/regressions/<target>/ is as small as libFuzzer can make it.
  shopt -s nullglob
  for artifact in "$artifact_dir"/crash-* "$artifact_dir"/timeout-* "$artifact_dir"/oom-*; do
    echo "--- minimizing $(basename "$artifact")" >&2
    set +e
    "$bin" -minimize_crash=1 -runs=2000 -exact_artifact_path="$artifact.min" \
      "$artifact" >/dev/null 2>&1
    set -e
    repro="$artifact"
    [[ -s "$artifact.min" ]] && repro="$artifact.min"
    echo "NEW CRASHER: $repro" >&2
    echo "  promote with: cp '$repro' '$regress_dir/'" >&2
    status=1
  done
  shopt -u nullglob

  # Corpus minimization: fold the working corpus back over the seeds and
  # list new coverage-increasing inputs worth committing.
  merged_dir="$BUILD_DIR/fuzz-merged/$target"
  rm -rf "$merged_dir" && mkdir -p "$merged_dir"
  "$bin" -merge=1 "$merged_dir" "$seed_dir" "$work_dir" >/dev/null 2>&1 || true
  new_seeds=$(comm -23 <(ls "$merged_dir" | sort) <(ls "$seed_dir" | sort) | wc -l)
  echo "fuzz_$target: $(ls "$merged_dir" | wc -l) corpus files after merge ($new_seeds new; see $merged_dir)"
done

exit $status
