#!/usr/bin/env sh
# Build, test, benchmark, and run every example — the full reproduction
# pipeline. Outputs land in test_output.txt / bench_output.txt at the repo
# root (the same files EXPERIMENTS.md refers to).
set -eu

cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

# Each bench also drops a BENCH_<name>.json stats document (engine
# counters + p50/p95/p99 latency histograms) at the repo root. POSIX sh
# has no pipefail, so benches write straight to the log and any non-zero
# exit aborts the pipeline instead of vanishing into a tee.
: > bench_output.txt
for b in build/bench/bench_*; do
  name=$(basename "$b")
  echo "===== $b ====="
  echo "===== $b =====" >> bench_output.txt
  if ! "$b" --stats-json "BENCH_${name#bench_}.json" >> bench_output.txt 2>&1; then
    echo "FAIL: $b exited non-zero; see bench_output.txt" >&2
    exit 1
  fi
done
cat bench_output.txt

# Compare the fresh medians against the committed baselines; prints a
# per-histogram report and flags >25% regressions (advisory here — pass
# --strict to gate on it).
python3 scripts/check_bench.py

for example in quickstart stock_monitor bank_accounts internet_monitor \
               epsilon_cache time_travel; do
  echo "===== examples/$example ====="
  "build/examples/$example"
done

echo "===== examples/cqtop (3 frames, local demo) ====="
"build/examples/cqtop" --frames 3 --interval-ms 50

echo "===== examples/cqshell (scripted) ====="
"build/examples/cqshell" <<'EOF'
CREATE TABLE Stocks (name STRING, price INT)
INSERT INTO Stocks VALUES ('DEC', 150)
INSTALL watch TRIGGER ONCHANGE AS SELECT * FROM Stocks WHERE price > 120
INSERT INTO Stocks VALUES ('MAC', 130)
POLL
STATS
STATS RESET
QUIT
EOF

echo "===== repository invariants (lint) ====="
python3 scripts/lint_invariants.py

echo "===== cqlint (whole-project semantic analysis) ====="
# set -eu above: a cqlint failure aborts the pipeline. Falls back to the
# textual backend when libclang is absent; same rules either way.
sh scripts/run_cqlint.sh

echo "===== concurrency stress (plain mode) ====="
build/tests/concurrency_test --gtest_brief=1

echo "===== introspection smoke (SERVE + curl) ====="
sh scripts/smoke_introspect.sh
