#!/usr/bin/env sh
# Build, test, benchmark, and run every example — the full reproduction
# pipeline. Outputs land in test_output.txt / bench_output.txt at the repo
# root (the same files EXPERIMENTS.md refers to).
set -eu

cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

# Each bench also drops a BENCH_<name>.json stats document (engine
# counters + p50/p95/p99 latency histograms) at the repo root.
{
  for b in build/bench/bench_*; do
    name=$(basename "$b")
    echo "===== $b ====="
    "$b" --stats-json "BENCH_${name#bench_}.json"
  done
} 2>&1 | tee bench_output.txt

for example in quickstart stock_monitor bank_accounts internet_monitor \
               epsilon_cache time_travel; do
  echo "===== examples/$example ====="
  "build/examples/$example"
done

echo "===== examples/cqshell (scripted) ====="
"build/examples/cqshell" <<'EOF'
CREATE TABLE Stocks (name STRING, price INT)
INSERT INTO Stocks VALUES ('DEC', 150)
INSTALL watch TRIGGER ONCHANGE AS SELECT * FROM Stocks WHERE price > 120
INSERT INTO Stocks VALUES ('MAC', 130)
POLL
QUIT
EOF
