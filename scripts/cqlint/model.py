"""Backend-neutral fact model.

Each backend (clang_backend.py, textual.py) reduces the tree to these
syntax facts; rules.py holds the policy that turns facts into findings.
Keeping the policy out of the backends is what lets one negative fixture
prove a rule under either backend.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class EnumInfo:
    """One `enum class` in the project, e.g. Expr::Kind."""

    name: str                 # unqualified name ("Kind")
    qualified: str            # best-effort qualification ("Expr::Kind")
    variants: tuple[str, ...]  # ("kCompare", "kBetween", ...)
    file: str
    line: int


@dataclass
class GuardedField:
    """A field annotated CQ_GUARDED_BY(mutex)."""

    class_name: str
    field_name: str
    mutex: str
    file: str
    line: int


@dataclass
class RefReturn:
    """A method whose return type is a reference or pointer, together
    with every identifier its return statements mention."""

    class_name: str           # "" for free functions
    method: str
    ret_type: str
    returned_names: frozenset[str]
    file: str
    line: int


@dataclass
class CallSite:
    line: int
    text: str                 # callee spelling, e.g. "run_all", "sleep_for"


@dataclass
class LockScope:
    """Lexical region where a LockGuard over `mutex` is alive."""

    mutex: str
    file: str
    line: int                 # guard construction
    end_line: int
    calls: list[CallSite] = field(default_factory=list)
    #: condition-variable waits inside the region: (line, mutex argument)
    waits: list[tuple[int, str]] = field(default_factory=list)


@dataclass
class WorkerLambda:
    """A lambda submitted (directly or via a task vector) to
    ThreadPool::run_all."""

    file: str
    line: int
    captures: tuple[str, ...]   # raw capture items: "this", "&outcomes", "=", "x = std::move(y)"
    #: declared type text for by-reference captures, resolved from the
    #: enclosing function where the backend can ("" when unknown)
    capture_types: dict[str, str]
    enclosing: str              # enclosing function, for the finding symbol


@dataclass
class SwitchStmt:
    """A switch whose case labels name project enum variants."""

    file: str
    line: int
    enum_name: str              # label qualifier tail ("Kind")
    labels: tuple[str, ...]     # variant names covered ("kCompare", ...)
    has_default: bool
    #: a default is "loud" when its body visibly refuses the value
    #: (throw / fail( / abort / unreachable) instead of swallowing it
    default_loud: bool
    default_line: int


@dataclass
class DeltaAccess:
    """A call to net_effect()/insertions()/deletions() on some receiver."""

    file: str
    line: int
    receiver: str               # source text of the receiver expression
    #: "snapshot" (DeltaSnapshot — internally pinned), "relation"
    #: (DeltaRelation — needs a live ReadPin), or "unknown"
    receiver_kind: str
    pin_in_scope: bool          # a ReadPin is live in the enclosing function
    enclosing: str


@dataclass
class Facts:
    """Everything the rules need, for one analysis run."""

    enums: list[EnumInfo] = field(default_factory=list)
    guarded_fields: list[GuardedField] = field(default_factory=list)
    ref_returns: list[RefReturn] = field(default_factory=list)
    lock_scopes: list[LockScope] = field(default_factory=list)
    worker_lambdas: list[WorkerLambda] = field(default_factory=list)
    switches: list[SwitchStmt] = field(default_factory=list)
    delta_accesses: list[DeltaAccess] = field(default_factory=list)

    def merge(self, other: "Facts") -> None:
        self.enums.extend(other.enums)
        self.guarded_fields.extend(other.guarded_fields)
        self.ref_returns.extend(other.ref_returns)
        self.lock_scopes.extend(other.lock_scopes)
        self.worker_lambdas.extend(other.worker_lambdas)
        self.switches.extend(other.switches)
        self.delta_accesses.extend(other.delta_accesses)


@dataclass(frozen=True)
class Finding:
    rule: str
    file: str                  # repo-relative posix path
    line: int
    symbol: str                # symbol the baseline matches against
    message: str

    def render(self) -> str:
        return f"{self.file}:{self.line}: {self.rule}: {self.message} [{self.symbol}]"
