"""cqlint self-test: every rule is proven against its negative fixture.

Each fixture under tests/negative/cqlint/ marks its violating lines with
a `// cqlint-expect: <rule>` comment. The self-test runs the analyzer
(whichever backend is active) over each fixture and asserts

  1. every marked line produced a finding of the marked rule (within a
     small line tolerance — backends anchor findings slightly
     differently), and
  2. the rule produced no findings *away* from the marks — the fixtures
     contain deliberate near-misses (loud defaults, pinned reads, pure
     captures) that a sloppy rule would flag.

Then the baseline machinery is checked: a justification-free suppression
and a stale suppression must both be rejected.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

from baseline import Baseline, Suppression
from cli import REPO, analyze
from model import Finding

FIXTURE_DIR = REPO / "tests" / "negative" / "cqlint"
EXPECT_RE = re.compile(r"//\s*cqlint-expect:\s*([\w-]+)")
TOLERANCE = 3  # lines; backends anchor on decl vs block-open vs label


def fixture_expectations(path: Path) -> list[tuple[int, str]]:
    out = []
    for lineno, line in enumerate(path.read_text().splitlines(), 1):
        for m in EXPECT_RE.finditer(line):
            out.append((lineno, m.group(1)))
    return out


def check_fixture(path: Path, findings: list[Finding]) -> list[str]:
    errors = []
    expects = fixture_expectations(path)
    if not expects:
        return [f"{path.name}: fixture carries no cqlint-expect markers"]
    rules_under_test = {rule for _, rule in expects}
    for lineno, rule in expects:
        hit = [f for f in findings
               if f.rule == rule and abs(f.line - lineno) <= TOLERANCE]
        if not hit:
            errors.append(f"{path.name}:{lineno}: expected {rule}, rule did "
                          "not fire")
    for f in findings:
        if f.rule not in rules_under_test:
            continue  # fixtures may incidentally trip sibling rules
        near = [e for e in expects
                if e[1] == f.rule and abs(f.line - e[0]) <= TOLERANCE]
        if not near:
            errors.append(f"{path.name}:{f.line}: unexpected {f.rule} "
                          f"finding ({f.message[:60]}...) — near-miss "
                          "incorrectly flagged")
    return errors


def self_test(backend: str, require_clang: bool) -> int:
    failures: list[str] = []
    fixtures = sorted(FIXTURE_DIR.glob("*.cpp"))
    if len(fixtures) < 5:
        print(f"self-test: only {len(fixtures)} fixture(s) under "
              f"{FIXTURE_DIR} — need one per rule", file=sys.stderr)
        return 1
    backend_used = ""
    for fx in fixtures:
        findings, backend_used, _ = analyze([fx], backend, None, require_clang)
        errs = check_fixture(fx, findings)
        failures += errs
        status = "ok" if not errs else "FAIL"
        fired = sorted({f.rule for f in findings})
        print(f"self-test[{backend_used}]: {fx.name}: {status} "
              f"(fired: {', '.join(fired) or 'none'})")

    # Baseline honesty checks need no fixtures.
    bl = Baseline([Suppression("exhaustive-switch", "src/x.cpp", "Kind", "ok")],
                  "<mem>")
    if not bl.validate():
        failures.append("baseline: justification-free suppression accepted")
    else:
        print("self-test: baseline rejects missing justification: ok")
    bl2 = Baseline([Suppression("worker-purity", "src/y.cpp", "never",
                                "a perfectly reasonable justification")],
                   "<mem>")
    bl2.filter([])
    if not bl2.stale():
        failures.append("baseline: stale suppression not reported")
    else:
        print("self-test: baseline reports stale suppressions: ok")

    for f in failures:
        print(f"self-test: {f}", file=sys.stderr)
    print(f"self-test[{backend_used}]: "
          f"{'PASS' if not failures else f'{len(failures)} failure(s)'}")
    return 1 if failures else 0
