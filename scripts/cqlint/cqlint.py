#!/usr/bin/env python3
"""Executable entry point: `python3 scripts/cqlint/cqlint.py [...]`.

Kept separate from cli.py so the package modules can import each other
by bare name regardless of how the tool is launched."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from cli import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
