"""Baseline / suppression handling.

scripts/cqlint/baseline.json lists the findings the project has examined
and accepts, each with a *mandatory written justification*. Matching is
structural — (rule, file, symbol-or-message substring) — never line
numbers, so unrelated edits do not invalidate entries; the message match
lets one entry pin a single capture/callee (e.g. "captures `this`")
rather than silencing a whole function. Two honesty checks:

  * an entry with a missing/short justification fails the run, and
  * an entry that no current finding matches is reported as stale
    (someone fixed the code: delete the suppression).
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path

from model import Finding

MIN_JUSTIFICATION = 20  # characters; "ok" is not a justification


@dataclass
class Suppression:
    rule: str
    file: str
    symbol: str
    justification: str
    used: int = 0

    def matches(self, f: Finding) -> bool:
        return (f.rule == self.rule and f.file == self.file
                and (self.symbol in f.symbol or self.symbol in f.message))


class Baseline:
    def __init__(self, entries: list[Suppression], path: str):
        self.entries = entries
        self.path = path

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.is_file():
            return cls([], str(path))
        doc = json.loads(path.read_text())
        entries = [
            Suppression(e["rule"], e["file"], e["symbol"],
                        e.get("justification", ""))
            for e in doc.get("suppressions", [])
        ]
        return cls(entries, str(path))

    def validate(self) -> list[str]:
        """Structural problems in the baseline file itself."""
        problems = []
        for e in self.entries:
            if len(e.justification.strip()) < MIN_JUSTIFICATION:
                problems.append(
                    f"{self.path}: suppression ({e.rule}, {e.file}, "
                    f"{e.symbol!r}) lacks a written justification "
                    f"(≥{MIN_JUSTIFICATION} chars) — every accepted finding "
                    "must say why it is safe")
        return problems

    def filter(self, findings: list[Finding]) -> list[Finding]:
        kept = []
        for f in findings:
            for e in self.entries:
                if e.matches(f):
                    e.used += 1
                    break
            else:
                kept.append(f)
        return kept

    def stale(self) -> list[str]:
        return [
            f"{self.path}: stale suppression ({e.rule}, {e.file}, "
            f"{e.symbol!r}) matches no current finding — the code was "
            "fixed; delete the entry"
            for e in self.entries if e.used == 0
        ]
