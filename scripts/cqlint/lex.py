"""Minimal C++ lexical utilities for the textual backend.

The textual backend never builds a real AST; it works on a *blanked*
copy of each file — comments and string/char literal contents replaced
with spaces, byte-for-byte the same length — so regex hits carry true
offsets and brace matching is exact even when literals contain braces.
"""

from __future__ import annotations

import bisect
import re

_RAW_OPEN_RE = re.compile(r'R"([^()\s\\]{0,16})\(')


def blank_comments_and_strings(text: str) -> str:
    """Replace comment bodies and literal contents with spaces (newlines
    kept, so line numbers survive). Quote delimiters are kept so string
    positions remain visible; their contents are blanked."""
    out = list(text)
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            for k in range(i, j):
                out[k] = " "
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            for k in range(i, j + 2):
                if out[k] != "\n":
                    out[k] = " "
            i = j + 2
        elif c == "R" and (m := _RAW_OPEN_RE.match(text, i)):
            close = ")" + m.group(1) + '"'
            j = text.find(close, m.end())
            j = n if j < 0 else j + len(close)
            for k in range(i, j):
                if out[k] != "\n":
                    out[k] = " "
            i = j
        elif c in "\"'":
            # Skip char/string literal; keep the delimiters.
            j = i + 1
            while j < n and text[j] != c:
                if text[j] == "\\":
                    j += 1
                j += 1
            for k in range(i + 1, min(j, n)):
                if out[k] != "\n":
                    out[k] = " "
            i = min(j, n) + 1
        else:
            i += 1
    return "".join(out)


class Source:
    """A blanked file plus the index structures every rule pass shares."""

    def __init__(self, path: str, text: str):
        self.path = path
        self.raw = text
        self.text = blank_comments_and_strings(text)
        self._line_starts = [0]
        for m in re.finditer("\n", self.text):
            self._line_starts.append(m.end())
        # Matching close brace (and reverse) for every '{' outside
        # literals — one linear pass.
        self.close_of: dict[int, int] = {}
        self.open_of: dict[int, int] = {}
        stack: list[int] = []
        for i, ch in enumerate(self.text):
            if ch == "{":
                stack.append(i)
            elif ch == "}" and stack:
                o = stack.pop()
                self.close_of[o] = i
                self.open_of[i] = o
        self._opens = sorted(self.close_of)

    def line_of(self, idx: int) -> int:
        return bisect.bisect_right(self._line_starts, idx)

    def enclosing_blocks(self, idx: int) -> list[tuple[int, int]]:
        """All {open, close} pairs containing idx, innermost first."""
        found = [
            (o, c)
            for o in self._opens
            if o < idx and (c := self.close_of[o]) > idx
        ]
        found.sort(key=lambda oc: oc[1] - oc[0])
        return found

    _SIG_TAIL_RE = re.compile(
        r"\)\s*(?:const)?\s*(?:noexcept(?:\([^()]*\))?)?\s*"
        r"(?:[A-Z_]{2,}\w*\s*\([^{}]*\)\s*)*"  # trailing CQ_* annotation macros
        r"(?:->\s*[^;{}]+?)?\s*(?:override|final)?\s*(?:try\s*)?$"
    )
    _CONTROL_RE = re.compile(r"^(?:else\s+)?(?:if|for|while|switch|catch|return)\b")

    def function_sig_before(self, open_idx: int) -> str | None:
        """The signature text of the function whose body opens at
        open_idx, or None when the block is not a function body (plain
        scope, class body, initializer list, lambda, ...)."""
        head = self.text[:open_idx].rstrip()
        # Member-initializer lists: walk back over `: a_(x), b_{y}` to the
        # closing paren of the parameter list.
        probe = head
        m = re.search(r"(?<!:):(?!:)\s*\w+[({][^{}]*[)}]\s*(?:,\s*\w+[({][^{}]*[)}]\s*)*$", probe)
        if m and ")" in probe[: m.start()]:
            probe = probe[: m.start()].rstrip()
        if not self._SIG_TAIL_RE.search(probe[-200:]):
            return None
        # Back to the statement boundary before the signature.
        start = max(probe.rfind(";"), probe.rfind("}"), probe.rfind("{"))
        sig = probe[start + 1 :].strip()
        # Lambdas carry their intro right before the params.
        if re.search(r"\]\s*\([^()]*\)[^()]*$", sig):
            return None
        if not sig or sig.endswith("]") or self._CONTROL_RE.match(sig):
            return None
        return sig

    def enclosing_function(self, idx: int) -> tuple[str, int, int, int] | None:
        """(signature, open_idx, close_idx, line) of the innermost
        function body containing idx."""
        for o, c in self.enclosing_blocks(idx):
            sig = self.function_sig_before(o)
            if sig is not None:
                return sig, o, c, self.line_of(o)
        return None

    def enclosing_class_span(self, idx: int) -> tuple[str, int, int]:
        """(name, open, close) of the innermost class/struct whose body
        contains idx; ("", -1, -1) when idx is at namespace scope."""
        best = ("", -1, -1)
        best_span = None
        for m in re.finditer(r"\b(?:class|struct)\s+(?:CQ_\w+\([^)]*\)\s+)?(\w+)[^;{(]*\{",
                             self.text):
            o = m.end() - 1
            c = self.close_of.get(o)
            if c is None or not (o < idx < c):
                continue
            if best_span is None or (c - o) < best_span:
                best, best_span = (m.group(1), o, c), c - o
        return best

    def enclosing_class(self, idx: int) -> str:
        return self.enclosing_class_span(idx)[0]


_QUAL = r"(?:[A-Za-z_]\w*::)*"


def parse_sig(sig: str) -> tuple[str, str, str]:
    """(return type text, class qualifier, function name) from a
    signature. Heuristic; empty strings when unparseable."""
    m = re.search(
        rf"({_QUAL})(~?[A-Za-z_]\w*|operator\S{{1,3}})\s*\($", sig.split("(")[0] + "(",
    )
    if not m:
        return "", "", ""
    qual = m.group(1).rstrip(":")
    name = m.group(2)
    ret = sig[: m.start()].strip()
    # Drop storage/attribute noise from the return type text.
    ret = re.sub(r"\[\[[^\]]*\]\]|\b(static|inline|constexpr|virtual|explicit)\b", "", ret).strip()
    return ret, qual.split("::")[-1] if qual else "", name


def split_commas(s: str) -> list[str]:
    """Split on commas not nested in (), <>, [], {}."""
    items, depth, cur = [], 0, []
    for ch in s:
        if ch in "(<[{":
            depth += 1
        elif ch in ")>]}":
            depth -= 1
        if ch == "," and depth == 0:
            items.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    tail = "".join(cur).strip()
    if tail:
        items.append(tail)
    return items
