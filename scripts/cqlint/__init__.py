"""cqlint — whole-project semantic analysis for the CQ engine.

The analyzer extracts a backend-neutral fact model from every translation
unit under src/ (see model.py) and runs the five rules in rules.py over
it. Two backends produce the facts:

  clang    libclang (clang.cindex) over the exported
           build/compile_commands.json — the authoritative backend, used
           by CI. Pinned major version: see PINNED_LIBCLANG.
  textual  a dependency-free lexer/scope-tracker fallback (textual.py)
           for machines without libclang. Same rules, same fixtures,
           slightly coarser type resolution.

Entry points:
  python3 scripts/cqlint/cqlint.py          (or scripts/run_cqlint.sh)
  python3 scripts/cqlint/cqlint.py --self-test
"""

__version__ = "1.0"

# The libclang major versions the clang backend is tested against; probe
# order in clang_backend.find_libclang(). CI installs the first entry.
PINNED_LIBCLANG = (14, 15, 16, 17, 18)
