"""The five cqlint rules — policy over the backend-neutral fact model.

  guarded-ref-escape   methods returning references/pointers to fields
                       guarded by a cq::common::Mutex: the reference
                       outlives the lock the moment the accessor returns
                       (the scrape-vs-engine race class).
  pin-before-snapshot  DeltaRelation::net_effect / insertions / deletions
                       reads must happen under a live ReadPin (or through
                       a DeltaSnapshot, which pins internally) — the
                       static leg of GC's never-truncate-under-a-reader
                       contract.
  blocking-under-lock  no sleeps, file/socket I/O, ThreadPool::run_all or
                       foreign-condvar waits while a named Mutex is held
                       — the static complement of the runtime lockdep.
  worker-purity        lambdas submitted to ThreadPool::run_all capture
                       engine state only by value or through sanctioned
                       snapshot/context types, preserving the
                       serially-replayed-side-effects discipline.
  exhaustive-switch    switches over project enums enumerate every
                       variant; a silent `default:` swallows the variants
                       nobody listed (loud defaults — throw/fail/abort —
                       are the sanctioned escape).
"""

from __future__ import annotations

from model import Facts, Finding

RULE_IDS = (
    "guarded-ref-escape",
    "pin-before-snapshot",
    "blocking-under-lock",
    "worker-purity",
    "exhaustive-switch",
)

#: Callee spellings that block (or can block arbitrarily long) — not
#: allowed while a cq::common::Mutex is held.
BLOCKING_CALLS = {
    "sleep_for": "sleeps",
    "sleep_until": "sleeps",
    "sleep": "sleeps",
    "usleep": "sleeps",
    "nanosleep": "sleeps",
    "run_all": "dispatches to the thread pool (workers may need this lock)",
    "fopen": "does file I/O",
    "ifstream": "does file I/O",
    "ofstream": "does file I/O",
    "fstream": "does file I/O",
    "basic_ifstream": "does file I/O",
    "basic_ofstream": "does file I/O",
    "basic_fstream": "does file I/O",
    "getline": "does stream I/O",
    "accept": "does socket I/O",
    "recv": "does socket I/O",
    "send": "does socket I/O",
    "connect": "does socket I/O",
    "poll": "does socket I/O",
    "select": "does socket I/O",
    "system": "spawns a process",
}

#: Types a run_all worker may capture by reference: read-only snapshot /
#: context state whose sharing discipline the engine already guarantees.
SANCTIONED_REF_TYPES = ("SnapshotMap", "DeltaSnapshot", "Context")

#: Mutex member names the capability system itself returns by reference
#: (CQ_RETURN_CAPABILITY accessors and friends) — not data escapes.
_MUTEX_NAME_HINTS = ("mu", "mu_", "mutex", "mutex_")


def run_rules(facts: Facts, enabled: set[str] | None = None) -> list[Finding]:
    findings: list[Finding] = []
    active = enabled or set(RULE_IDS)
    if "guarded-ref-escape" in active:
        findings += guarded_ref_escape(facts)
    if "pin-before-snapshot" in active:
        findings += pin_before_snapshot(facts)
    if "blocking-under-lock" in active:
        findings += blocking_under_lock(facts)
    if "worker-purity" in active:
        findings += worker_purity(facts)
    if "exhaustive-switch" in active:
        findings += exhaustive_switch(facts)
    findings.sort(key=lambda f: (f.file, f.line, f.rule))
    return findings


def guarded_ref_escape(facts: Facts) -> list[Finding]:
    by_class: dict[str, list] = {}
    for g in facts.guarded_fields:
        by_class.setdefault(g.class_name, []).append(g)
    out = []
    for r in facts.ref_returns:
        for g in by_class.get(r.class_name, ()):
            if g.field_name in r.returned_names and g.field_name not in _MUTEX_NAME_HINTS:
                out.append(Finding(
                    "guarded-ref-escape", r.file, r.line,
                    f"{r.class_name}::{r.method}",
                    f"returns `{r.ret_type}` reaching field `{g.field_name}` "
                    f"guarded by `{g.mutex}` — the reference escapes the "
                    "critical section; return a copy or document why the "
                    "referent is immutable"))
                break
    return out


def pin_before_snapshot(facts: Facts) -> list[Finding]:
    out = []
    for a in facts.delta_accesses:
        if a.receiver_kind == "snapshot":
            continue  # DeltaSnapshot holds its own ReadPin
        if a.pin_in_scope:
            continue
        kind = ("DeltaRelation" if a.receiver_kind == "relation"
                else "unresolved receiver (treated as DeltaRelation)")
        out.append(Finding(
            "pin-before-snapshot", a.file, a.line, a.enclosing,
            f"`{a.receiver}` ({kind}) is read without a live ReadPin in "
            "scope — GC may truncate the rows mid-read; take "
            "`auto pin = rel.pin_reads();` first or go through a "
            "DeltaSnapshot"))
    return out


def blocking_under_lock(facts: Facts) -> list[Finding]:
    out = []
    for s in facts.lock_scopes:
        seen: set[tuple[int, str]] = set()
        for c in s.calls:
            why = BLOCKING_CALLS.get(c.text)
            if why is None or (c.line, c.text) in seen:
                continue
            seen.add((c.line, c.text))
            out.append(Finding(
                "blocking-under-lock", s.file, c.line, s.mutex,
                f"`{c.text}` {why} while `{s.mutex}` is held "
                f"(acquired line {s.line}) — shrink the critical section"))
        for line, waited in s.waits:
            if waited != s.mutex:
                out.append(Finding(
                    "blocking-under-lock", s.file, line, s.mutex,
                    f"condition-variable wait on `{waited}` while holding "
                    f"`{s.mutex}` (acquired line {s.line}) — waiting on a "
                    "foreign mutex under a held lock is a deadlock recipe"))
    return out


def worker_purity(facts: Facts) -> list[Finding]:
    out = []
    for w in facts.worker_lambdas:
        for cap in w.captures:
            cap = cap.strip()
            if cap == "&":
                out.append(Finding(
                    "worker-purity", w.file, w.line, w.enclosing,
                    "run_all worker captures everything by reference "
                    "([&]) — name each capture so the purity contract is "
                    "auditable"))
            elif cap == "this":
                out.append(Finding(
                    "worker-purity", w.file, w.line, w.enclosing,
                    "run_all worker captures `this` — engine state is "
                    "reachable mutably from a pool lane; route reads "
                    "through snapshots and replay side effects serially"))
            elif cap.startswith("&"):
                ty = w.capture_types.get(cap, "")
                if any(t in ty for t in SANCTIONED_REF_TYPES):
                    continue
                out.append(Finding(
                    "worker-purity", w.file, w.line, w.enclosing,
                    f"run_all worker captures `{cap}` by reference "
                    f"(type `{ty or 'unresolved'}`) — only const/value "
                    "captures or sanctioned snapshot/context types "
                    f"({', '.join(SANCTIONED_REF_TYPES)}) are pure"))
    return out


def exhaustive_switch(facts: Facts) -> list[Finding]:
    # Variant-set index; the label qualifier tail picks the enum, the
    # variant set disambiguates same-named nested enums (Kind, ...).
    by_name: dict[str, list] = {}
    for e in facts.enums:
        by_name.setdefault(e.name, []).append(e)
    out = []
    for s in facts.switches:
        candidates = by_name.get(s.enum_name, [])
        enum = None
        for e in candidates:
            if set(s.labels) <= set(e.variants):
                enum = e
                break
        if enum is None:
            continue  # not a project enum (or labels we cannot resolve)
        missing = [v for v in enum.variants if v not in s.labels]
        if s.has_default and not s.default_loud:
            what = (f"future variants of {enum.qualified}" if not missing
                    else f"{', '.join(missing)}")
            out.append(Finding(
                "exhaustive-switch", s.file, s.default_line, enum.qualified,
                f"silent `default:` over {enum.qualified} swallows {what} — "
                "enumerate every variant (or make the default throw)"))
        elif not s.has_default and missing:
            out.append(Finding(
                "exhaustive-switch", s.file, s.line, enum.qualified,
                f"switch over {enum.qualified} misses "
                f"{', '.join(missing)} — enumerate every variant"))
    return out
