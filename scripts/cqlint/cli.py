"""cqlint command line driver.

  cqlint.py [paths...]        analyze (default: every .hpp/.cpp under src/)
  cqlint.py --self-test       prove every rule against its negative fixture
  cqlint.py --list-rules      print the rule catalog
  cqlint.py --backend=clang   force the libclang backend (error if absent)
  cqlint.py --require-clang   CI mode: missing libclang fails instead of
                              falling back to the textual backend

Exit status: 0 clean, 1 findings/baseline problems, 2 usage/backend error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

import rules as rules_mod
from baseline import Baseline
from model import Facts, Finding

REPO = Path(__file__).resolve().parent.parent.parent
DEFAULT_BASELINE = Path(__file__).resolve().parent / "baseline.json"
DEFAULT_COMPDB = REPO / "build"


def gather_paths(args_paths: list[str]) -> list[Path]:
    if args_paths:
        out: list[Path] = []
        for a in args_paths:
            p = Path(a)
            if p.is_dir():
                out += [f for f in sorted(p.rglob("*"))
                        if f.suffix in (".hpp", ".cpp", ".h")]
            else:
                out.append(p)
        return out
    src = REPO / "src"
    return [f for f in sorted(src.rglob("*")) if f.suffix in (".hpp", ".cpp", ".h")]


def make_backend(which: str, paths: list[Path], compdb: Path | None,
                 require_clang: bool):
    """(backend, note) — the clang backend when available, else textual."""
    if which in ("auto", "clang"):
        try:
            from clang_backend import BackendUnavailable, ClangBackend
            try:
                return ClangBackend(REPO, paths, compdb), ""
            except BackendUnavailable as exc:
                if which == "clang" or require_clang:
                    sys.exit(f"cqlint: libclang backend required but unavailable: {exc}")
                note = f"cqlint: libclang unavailable ({exc}); textual fallback"
        except ImportError as exc:  # clang_backend itself failed to import
            if which == "clang" or require_clang:
                sys.exit(f"cqlint: libclang backend required but unavailable: {exc}")
            note = f"cqlint: libclang unavailable ({exc}); textual fallback"
    else:
        note = ""
    from textual import TextualBackend
    return TextualBackend(REPO, paths), note


def analyze(paths: list[Path], backend_name: str, compdb: Path | None,
            require_clang: bool, only: set[str] | None = None
            ) -> tuple[list[Finding], str, str]:
    backend, note = make_backend(backend_name, paths, compdb, require_clang)
    facts: Facts = backend.extract()
    return rules_mod.run_rules(facts, only), backend.name, note


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(prog="cqlint", description=__doc__)
    ap.add_argument("paths", nargs="*")
    ap.add_argument("--backend", choices=("auto", "clang", "textual"),
                    default="auto")
    ap.add_argument("--compdb", default=str(DEFAULT_COMPDB),
                    help="directory containing compile_commands.json")
    ap.add_argument("--baseline", default=str(DEFAULT_BASELINE))
    ap.add_argument("--no-baseline", action="store_true",
                    help="report raw findings, ignoring suppressions")
    ap.add_argument("--require-clang", action="store_true")
    ap.add_argument("--rule", action="append", default=None,
                    help="run only this rule (repeatable)")
    ap.add_argument("--self-test", action="store_true")
    ap.add_argument("--list-rules", action="store_true")
    args = ap.parse_args(argv)

    if args.list_rules:
        print(rules_mod.__doc__)
        return 0
    if args.self_test:
        from selftest import self_test
        return self_test(args.backend, args.require_clang)
    if args.rule:
        unknown = set(args.rule) - set(rules_mod.RULE_IDS)
        if unknown:
            sys.exit(f"cqlint: unknown rule(s): {', '.join(sorted(unknown))}")

    paths = gather_paths(args.paths)
    if not paths:
        sys.exit("cqlint: nothing to analyze")
    compdb = Path(args.compdb) if (Path(args.compdb) / "compile_commands.json").is_file() else None
    findings, backend_name, note = analyze(
        paths, args.backend, compdb, args.require_clang,
        set(args.rule) if args.rule else None)
    if note:
        print(note, file=sys.stderr)

    problems: list[str] = []
    if args.no_baseline:
        kept = findings
    else:
        bl = Baseline.load(Path(args.baseline))
        problems += bl.validate()
        kept = bl.filter(findings)
        problems += bl.stale()

    for f in kept:
        print(f.render(), file=sys.stderr)
    for p in problems:
        print(p, file=sys.stderr)
    n_sup = len(findings) - len(kept)
    if kept or problems:
        print(f"cqlint[{backend_name}]: {len(kept)} finding(s), "
              f"{len(problems)} baseline problem(s), {n_sup} suppressed, "
              f"{len(paths)} file(s)", file=sys.stderr)
        return 1
    print(f"cqlint[{backend_name}]: clean — {len(paths)} file(s), "
          f"{len(rules_mod.RULE_IDS)} rule(s), {n_sup} suppressed with "
          "justification")
    return 0
