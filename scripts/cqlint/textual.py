"""Dependency-free fallback backend.

Extracts the model.Facts from blanked source text (lex.Source) with
regexes plus exact brace matching. Coarser than the libclang backend —
receiver types are resolved from visible declarations instead of the
real type system — but it runs anywhere Python runs, so local GCC-only
machines still get the full rule set.
"""

from __future__ import annotations

import re
from pathlib import Path

from lex import Source, parse_sig, split_commas
from model import (CallSite, DeltaAccess, EnumInfo, Facts, GuardedField,
                   LockScope, RefReturn, SwitchStmt, WorkerLambda)

ENUM_RE = re.compile(r"\benum\s+class\s+(\w+)\s*(?::[^{;]+)?\{")
VARIANT_RE = re.compile(r"\b(k[A-Z]\w*)\b")
GUARDED_RE = re.compile(r"\b([A-Za-z_]\w*)\s+CQ_(?:PT_)?GUARDED_BY\(\s*(\w+)\s*\)")
RETURN_RE = re.compile(r"\breturn\b([^;]*);")
LOCK_GUARD_RE = re.compile(
    r"\b(?:common::)?LockGuard\s+\w+\s*[({]\s*([A-Za-z_][\w.\->]*)"
)
CALL_RE = re.compile(r"\b([A-Za-z_]\w*)\s*\(")
WAIT_RE = re.compile(r"\b[\w.\->]*(?:\.|->)wait\s*\(\s*([A-Za-z_]\w*)")
RUN_ALL_RE = re.compile(r"\b(?:\.|->)\s*run_all\s*\(")
LAMBDA_RE = re.compile(r"\[([^\[\]]*)\]\s*(?:\([^()]*\))?\s*(?:mutable\b)?[^{;]*?\{")
SWITCH_RE = re.compile(r"\bswitch\s*\(")
CASE_RE = re.compile(r"\bcase\s+((?:\w+::)*)(k[A-Z]\w*)\s*:")
DEFAULT_RE = re.compile(r"\bdefault\s*:")
LOUD_DEFAULT_RE = re.compile(
    r"\bthrow\b|\bfail\s*\(|\babort\s*\(|\bunreachable\b|assert\s*\(\s*false"
)
DELTA_ACCESS_RE = re.compile(r"(?:\.|->)\s*(net_effect|insertions|deletions)\s*\(")
IDENT_RE = re.compile(r"\b[A-Za-z_]\w*\b")


def _match_paren(text: str, open_idx: int) -> int:
    depth = 0
    for i in range(open_idx, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


def _receiver_before(text: str, dot_idx: int) -> str:
    """The receiver expression ending right before `.`/`->` at dot_idx,
    scanned backwards over identifiers, ::, member ops and balanced
    ()/[] groups."""
    i = dot_idx
    while i > 0:
        c = text[i - 1]
        if c in ")]":
            depth, close = 0, c
            open_c = "(" if c == ")" else "["
            while i > 0:
                i -= 1
                if text[i] == close:
                    depth += 1
                elif text[i] == open_c:
                    depth -= 1
                    if depth == 0:
                        break
        elif c.isalnum() or c in "_:":
            i -= 1
        elif c in ".>" or (c == "-" and i > 1 and text[i - 2] != "-"):
            i -= 1
        else:
            break
    return text[i:dot_idx].strip().lstrip(".->")


class TextualBackend:
    name = "textual"

    def __init__(self, repo: Path, paths: list[Path]):
        self.repo = repo
        self.paths = paths

    def extract(self) -> Facts:
        facts = Facts()
        sources = []
        for p in self.paths:
            try:
                sources.append(Source(p.relative_to(self.repo).as_posix(),
                                      p.read_text(errors="replace")))
            except OSError:
                continue
        for src in sources:
            self._enums(src, facts)
            self._guarded(src, facts)
        for src in sources:
            self._ref_returns(src, facts)
            self._lock_scopes(src, facts)
            self._worker_lambdas(src, facts)
            self._switches(src, facts)
            self._delta_accesses(src, facts)
        return facts

    # ------------------------------------------------------------- enums --
    def _enums(self, src: Source, facts: Facts) -> None:
        for m in ENUM_RE.finditer(src.text):
            open_idx = m.end() - 1
            close = src.close_of.get(open_idx)
            if close is None:
                continue
            body = src.text[open_idx + 1 : close]
            variants = []
            for item in split_commas(body):
                vm = VARIANT_RE.match(item.strip())
                if vm:
                    variants.append(vm.group(1))
            if not variants:
                continue
            variants = tuple(variants)
            cls = src.enclosing_class(m.start())
            qualified = f"{cls}::{m.group(1)}" if cls else m.group(1)
            facts.enums.append(EnumInfo(m.group(1), qualified, variants,
                                        src.path, src.line_of(m.start())))

    # --------------------------------------------------- guarded fields --
    def _guarded(self, src: Source, facts: Facts) -> None:
        for m in GUARDED_RE.finditer(src.text):
            facts.guarded_fields.append(GuardedField(
                src.enclosing_class(m.start()), m.group(1), m.group(2),
                src.path, src.line_of(m.start())))

    # ------------------------------------------------------ ref returns --
    def _ref_returns(self, src: Source, facts: Facts) -> None:
        for open_idx, close_idx in list(src.close_of.items()):
            sig = src.function_sig_before(open_idx)
            if sig is None:
                continue
            ret, cls, name = parse_sig(sig)
            if not name or ("&" not in ret and "*" not in ret):
                continue
            if not cls:
                cls = src.enclosing_class(open_idx)
            body = src.text[open_idx:close_idx]
            names: set[str] = set()
            returns_something = False
            for rm in RETURN_RE.finditer(body):
                expr = rm.group(1)
                if expr.strip():
                    returns_something = True
                names.update(IDENT_RE.findall(expr))
            if returns_something:
                facts.ref_returns.append(RefReturn(
                    cls, name, ret, frozenset(names), src.path,
                    src.line_of(open_idx)))

    # ------------------------------------------------------ lock scopes --
    def _lock_scopes(self, src: Source, facts: Facts) -> None:
        for m in LOCK_GUARD_RE.finditer(src.text):
            blocks = src.enclosing_blocks(m.start())
            if not blocks:
                continue
            region_end = blocks[0][1]
            region = src.text[m.end() : region_end]
            base = m.end()
            scope = LockScope(m.group(1), src.path, src.line_of(m.start()),
                              src.line_of(region_end))
            for cm in CALL_RE.finditer(region):
                scope.calls.append(CallSite(src.line_of(base + cm.start()),
                                            cm.group(1)))
            # Stream construction blocks without looking like a call.
            for sm in re.finditer(r"\b([io]?fstream)\b", region):
                scope.calls.append(CallSite(src.line_of(base + sm.start()),
                                            sm.group(1)))
            for wm in WAIT_RE.finditer(region):
                scope.waits.append((src.line_of(base + wm.start()), wm.group(1)))
            facts.lock_scopes.append(scope)

    # -------------------------------------------------- worker lambdas --
    def _worker_lambdas(self, src: Source, facts: Facts) -> None:
        for m in RUN_ALL_RE.finditer(src.text):
            fn = src.enclosing_function(m.start())
            fn_sig, fn_open, fn_close = ("", 0, len(src.text)) if fn is None else fn[:3]
            _, _, fn_name = parse_sig(fn_sig) if fn_sig else ("", "", "")
            arg_open = src.text.find("(", m.end() - 1)
            arg_close = _match_paren(src.text, arg_open)
            arg = src.text[arg_open + 1 : arg_close]
            spans: list[tuple[int, int]] = [(arg_open, arg_close)]
            # A task vector handed to run_all: every lambda pushed into it
            # inside this function is a worker.
            vec = re.match(r"\s*(?:std::move\(\s*)?([A-Za-z_]\w*)", arg)
            if vec and "[" not in arg:
                push = re.compile(rf"\b{re.escape(vec.group(1))}\s*\.\s*"
                                  r"(?:emplace_back|push_back)\s*\(")
                for pm in push.finditer(src.text, fn_open, fn_close):
                    p_open = src.text.find("(", pm.end() - 1)
                    spans.append((p_open, _match_paren(src.text, p_open)))
            fn_body_before = src.text[fn_open:]
            for s_open, s_close in spans:
                span_text = src.text[s_open : s_close + 1]
                for lm in LAMBDA_RE.finditer(span_text):
                    captures = tuple(c for c in split_commas(lm.group(1)) if c)
                    if not captures:
                        continue
                    types: dict[str, str] = {}
                    for cap in captures:
                        if cap.startswith("&") and len(cap) > 1:
                            types[cap] = self._decl_type(
                                src, cap[1:].strip(), s_open + lm.start())
                    facts.worker_lambdas.append(WorkerLambda(
                        src.path, src.line_of(s_open + lm.start()), captures,
                        types, fn_name or "<file scope>"))

    def _decl_type(self, src: Source, name: str, before_idx: int) -> str:
        """Best-effort declared type of `name`, looking at declarations
        visible before `before_idx` (then anywhere in the file)."""
        decl = re.compile(
            rf"\b((?:const\s+)?[A-Za-z_][\w:]*(?:<[^;()]*>)?)\s*[&*]?\s+"
            rf"{re.escape(name)}\s*[;=({{]")
        for window in (src.text[:before_idx], src.text):
            candidates = [d for d in decl.finditer(window)
                          if d.group(1) not in ("return", "delete", "new")]
            if candidates:
                return candidates[-1].group(1)
        return ""

    # --------------------------------------------------------- switches --
    def _switches(self, src: Source, facts: Facts) -> None:
        for m in SWITCH_RE.finditer(src.text):
            cond_open = src.text.find("(", m.end() - 1)
            cond_close = _match_paren(src.text, cond_open)
            body_open = src.text.find("{", cond_close)
            if body_open < 0:
                continue
            body_close = src.close_of.get(body_open)
            if body_close is None:
                continue
            labels: list[tuple[str, str]] = []   # (enum qualifier tail, variant)
            has_default, default_idx = False, -1
            depth = 0
            i = body_open + 1
            while i < body_close:
                c = src.text[i]
                if c == "{":
                    depth += 1
                elif c == "}":
                    depth -= 1
                elif depth == 0:
                    if cm := CASE_RE.match(src.text, i):
                        quals = [q for q in cm.group(1).split("::") if q]
                        labels.append((quals[-1] if quals else "", cm.group(2)))
                        i = cm.end()
                        continue
                    if (not has_default) and (dm := DEFAULT_RE.match(src.text, i)):
                        has_default, default_idx = True, i
                        i = dm.end()
                        continue
                i += 1
            enum_names = [q for q, _ in labels if q]
            if not enum_names:
                continue  # switch over char/int/etc — out of scope
            enum_name = max(set(enum_names), key=enum_names.count)
            loud = False
            if has_default:
                # Default body: up to the next depth-0 case label or the
                # switch's closing brace.
                rest = src.text[default_idx:body_close]
                nxt = CASE_RE.search(rest)
                body = rest[: nxt.start()] if nxt else rest
                loud = bool(LOUD_DEFAULT_RE.search(body))
            facts.switches.append(SwitchStmt(
                src.path, src.line_of(m.start()), enum_name,
                tuple(v for _, v in labels), has_default, loud,
                src.line_of(default_idx) if has_default else 0))

    # --------------------------------------------------- delta accesses --
    def _delta_accesses(self, src: Source, facts: Facts) -> None:
        for m in DELTA_ACCESS_RE.finditer(src.text):
            receiver = _receiver_before(src.text, m.start())
            if not receiver:
                continue
            fn = src.enclosing_function(m.start())
            if fn is not None:
                fn_sig, fn_open, _, _ = fn
                _, _, fn_name = parse_sig(fn_sig)
            else:
                fn_sig, fn_open, fn_name = "", 0, "<file scope>"
            kind = self._classify_receiver(src, receiver, fn_sig, fn_open, m.start())
            pre = src.text[fn_open : m.start()] + " " + fn_sig
            pin = bool(re.search(r"\bpin_reads\s*\(|\bReadPin\b", pre))
            if not pin:
                # A class holding a ReadPin member (the DeltaSnapshot
                # pattern) pins every member-function read for the
                # object's whole lifetime.
                _, c_open, c_close = src.enclosing_class_span(m.start())
                if c_open >= 0 and re.search(
                        r"\bReadPin\s+\w+", src.text[c_open:c_close]):
                    pin = True
            facts.delta_accesses.append(DeltaAccess(
                src.path, src.line_of(m.start()), receiver, kind, pin,
                fn_name or "<file scope>"))

    def _classify_receiver(self, src: Source, receiver: str, fn_sig: str,
                           fn_open: int, idx: int) -> str:
        if re.search(r"(?:\.|->|^)delta\s*\($", receiver.split("(")[0] + "(") or \
           re.search(r"(?:\.|->)delta\s*\(", receiver):
            return "relation"
        base = re.match(r"[A-Za-z_]\w*", receiver)
        if base is None:
            return "unknown"
        name = base.group(0)
        if re.search(r"\bsnap(shot)?s?\b", name, re.IGNORECASE):
            return "snapshot"
        decl_type = self._decl_type(src, name, idx) + " " + fn_sig
        if "DeltaSnapshot" in decl_type or "SnapshotMap" in decl_type:
            return "snapshot"
        if "DeltaRelation" in decl_type:
            return "relation"
        return "unknown"
