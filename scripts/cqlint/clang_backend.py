"""libclang backend — semantic fact extraction over clang.cindex.

Parses every translation unit listed in the exported
compile_commands.json (plus standalone files, e.g. the negative
fixtures) and reduces the AST to model.Facts. Where the textual backend
guesses receiver types from visible declarations, this backend reads
them off the real type system: a net_effect() call is classified by the
semantic parent of the method it resolves to, a switch by the enum
declaration of its condition type.

The backend raises BackendUnavailable when python-clang or a loadable
libclang shared object is missing; the CLI then falls back to the
textual backend (or fails under --require-clang, as CI runs it).
"""

from __future__ import annotations

import glob
import os
import re
from pathlib import Path

from model import (CallSite, DeltaAccess, EnumInfo, Facts, GuardedField,
                   LockScope, RefReturn, SwitchStmt, WorkerLambda)

try:  # deferred so `import clang_backend` itself never hard-fails
    import clang.cindex as ci
except ImportError:  # pragma: no cover - exercised on machines w/o bindings
    ci = None


class BackendUnavailable(RuntimeError):
    pass


def find_libclang() -> str | None:
    """Probe for a libclang shared object, newest pinned version first.
    CQLINT_LIBCLANG overrides (CI pins it to the apt/pip-installed one)."""
    explicit = os.environ.get("CQLINT_LIBCLANG")
    if explicit:
        return explicit if Path(explicit).exists() else None
    from __init__ import PINNED_LIBCLANG  # noqa: PLC0415

    patterns = []
    for major in sorted(PINNED_LIBCLANG, reverse=True):
        patterns += [
            f"/usr/lib/llvm-{major}/lib/libclang.so*",
            f"/usr/lib/llvm-{major}/lib/libclang-{major}*.so*",
            f"/usr/lib/x86_64-linux-gnu/libclang-{major}*.so*",
        ]
    patterns.append("/usr/lib/x86_64-linux-gnu/libclang.so*")
    for pat in patterns:
        hits = sorted(glob.glob(pat))
        if hits:
            return hits[0]
    return None


def make_index() -> "ci.Index":
    if ci is None:
        raise BackendUnavailable("python3 'clang' bindings not installed")
    if not ci.Config.loaded:
        lib = find_libclang()
        if lib is None:
            raise BackendUnavailable("no libclang shared object found "
                                     "(set CQLINT_LIBCLANG)")
        ci.Config.set_library_file(lib)
    try:
        return ci.Index.create()
    except Exception as exc:  # LibclangError has varied types per version
        raise BackendUnavailable(f"libclang failed to load: {exc}") from exc


_DELTA_METHODS = ("net_effect", "insertions", "deletions")


class ClangBackend:
    name = "clang"

    def __init__(self, repo: Path, paths: list[Path], compdb_dir: Path | None):
        self.repo = repo
        self.paths = paths
        self.compdb_dir = compdb_dir
        self.index = make_index()
        self._seen: set[tuple] = set()

    # ------------------------------------------------------------ driving --
    def extract(self) -> Facts:
        facts = Facts()
        compdb = None
        if self.compdb_dir is not None and ci is not None:
            try:
                compdb = ci.CompilationDatabase.fromDirectory(str(self.compdb_dir))
            except ci.CompilationDatabaseError:
                compdb = None
        wanted = {p.resolve() for p in self.paths}
        parsed: set[Path] = set()
        if compdb is not None:
            for cmd in compdb.getAllCompileCommands():
                src = Path(cmd.directory, cmd.filename).resolve()
                if src not in wanted:
                    continue
                args = self._filter_args(list(cmd.arguments))
                self._parse_into(src, args, facts)
                parsed.add(src)
        fallback_args = ["-std=c++20", f"-I{self.repo / 'src'}", "-xc++"]
        for p in sorted(wanted - parsed):
            if p.suffix in (".cpp", ".cc"):
                self._parse_into(p, fallback_args, facts)
            elif p.suffix in (".hpp", ".h") and p not in parsed:
                # Headers reached through no TU (fixtures): parse directly.
                self._parse_into(p, fallback_args + ["-xc++-header"], facts)
        return facts

    @staticmethod
    def _filter_args(args: list[str]) -> list[str]:
        out, skip = [], True  # first arg is the compiler itself
        it = iter(args)
        next(it, None)
        for a in it:
            if a in ("-c", "-o"):
                next(it, None) if a == "-o" else None
                continue
            if a.endswith((".cpp", ".cc", ".o")):
                continue
            out.append(a)
        out.append("-Wno-everything")  # diagnostics are not this tool's job
        return out

    def _parse_into(self, path: Path, args: list[str], facts: Facts) -> None:
        try:
            tu = self.index.parse(str(path), args=args)
        except ci.TranslationUnitLoadError:
            return
        self._walk_tu(tu, facts)

    # ------------------------------------------------------------ walking --
    def _rel(self, cursor) -> str | None:
        f = cursor.location.file
        if f is None:
            return None
        try:
            return Path(f.name).resolve().relative_to(self.repo).as_posix()
        except ValueError:
            return None

    def _once(self, *key) -> bool:
        if key in self._seen:
            return False
        self._seen.add(key)
        return True

    def _tokens(self, cursor) -> list[str]:
        return [t.spelling for t in cursor.get_tokens()]

    def _walk_tu(self, tu, facts: Facts) -> None:
        K = ci.CursorKind
        fn_stack: list = []    # enclosing function-ish cursors
        comp_stack: list = []  # enclosing compound statements

        def enclosing_name() -> str:
            if not fn_stack:
                return "<file scope>"
            c = fn_stack[-1]
            parent = c.semantic_parent
            if parent is not None and parent.kind in (
                    K.CLASS_DECL, K.STRUCT_DECL, K.CLASS_TEMPLATE):
                return f"{parent.spelling}::{c.spelling}"
            return c.spelling or "<file scope>"

        def visit(cursor):
            rel = self._rel(cursor)
            in_fn = cursor.kind in (K.CXX_METHOD, K.FUNCTION_DECL,
                                    K.CONSTRUCTOR, K.DESTRUCTOR,
                                    K.FUNCTION_TEMPLATE)
            in_comp = cursor.kind == K.COMPOUND_STMT
            if in_fn:
                fn_stack.append(cursor)
            if in_comp:
                comp_stack.append(cursor)
            if rel is not None:
                self._on_cursor(cursor, rel, facts, fn_stack, comp_stack,
                                enclosing_name)
            for child in cursor.get_children():
                visit(child)
            if in_fn:
                fn_stack.pop()
            if in_comp:
                comp_stack.pop()

        visit(tu.cursor)

    # ------------------------------------------------------- per-cursor --
    def _on_cursor(self, c, rel: str, facts: Facts, fn_stack, comp_stack,
                   enclosing_name):
        K = ci.CursorKind
        line = c.location.line
        if c.kind == K.ENUM_DECL and c.spelling:
            variants = tuple(ch.spelling for ch in c.get_children()
                             if ch.kind == K.ENUM_CONSTANT_DECL)
            if variants and self._once("enum", c.spelling, variants):
                parent = c.semantic_parent
                qual = (f"{parent.spelling}::{c.spelling}"
                        if parent is not None and parent.kind in
                        (K.CLASS_DECL, K.STRUCT_DECL) else c.spelling)
                facts.enums.append(EnumInfo(c.spelling, qual, variants, rel, line))
        elif c.kind == K.FIELD_DECL:
            self._field(c, rel, line, facts)
        elif c.kind in (K.CXX_METHOD, K.FUNCTION_DECL) and c.is_definition():
            self._ref_return(c, rel, line, facts)
        elif c.kind == K.VAR_DECL and "LockGuard" in c.type.spelling:
            self._lock_scope(c, rel, line, facts, comp_stack)
        elif c.kind == K.CALL_EXPR and c.spelling == "run_all":
            self._workers(c, rel, facts, fn_stack, enclosing_name)
        elif c.kind == K.CALL_EXPR and c.spelling in _DELTA_METHODS:
            self._delta_access(c, rel, line, facts, fn_stack, enclosing_name)
        elif c.kind == K.SWITCH_STMT:
            self._switch(c, rel, line, facts)

    def _field(self, c, rel, line, facts: Facts) -> None:
        toks = self._tokens(c)
        for i, t in enumerate(toks):
            if "GUARDED_BY" in t and i + 2 < len(toks) and toks[i + 1] == "(":
                cls = c.semantic_parent.spelling if c.semantic_parent else ""
                if self._once("guard", cls, c.spelling):
                    facts.guarded_fields.append(GuardedField(
                        cls, c.spelling, toks[i + 2], rel, line))
                break

    def _ref_return(self, c, rel, line, facts: Facts) -> None:
        T = ci.TypeKind
        if c.result_type.kind not in (T.LVALUEREFERENCE, T.RVALUEREFERENCE,
                                      T.POINTER):
            return
        K = ci.CursorKind
        names: set[str] = set()
        has_return = False

        def grab(cur):
            nonlocal has_return
            if cur.kind == K.RETURN_STMT:
                has_return = True
                for d in cur.walk_preorder():
                    if d.kind in (K.MEMBER_REF_EXPR, K.DECL_REF_EXPR) and d.spelling:
                        names.add(d.spelling)
                return
            for ch in cur.get_children():
                grab(ch)

        grab(c)
        if not has_return:
            return
        parent = c.semantic_parent
        cls = (parent.spelling if parent is not None and parent.kind in
               (K.CLASS_DECL, K.STRUCT_DECL, K.CLASS_TEMPLATE) else "")
        if self._once("refret", cls, c.spelling, rel, line):
            facts.ref_returns.append(RefReturn(
                cls, c.spelling, c.result_type.spelling, frozenset(names),
                rel, line))

    def _lock_scope(self, c, rel, line, facts: Facts, comp_stack) -> None:
        toks = self._tokens(c)
        mutex = ""
        for i, t in enumerate(toks):
            if t in ("(", "{") and i + 1 < len(toks):
                mutex = toks[i + 1]
                break
        if not mutex or not self._once("lock", rel, line):
            return
        scope = LockScope(mutex, rel, line, line)
        # The guard lives to the end of the innermost compound statement it
        # was declared in — calls are filtered to [decl line, compound end].
        walk_root = comp_stack[-1] if comp_stack else (
            c.lexical_parent if c.lexical_parent is not None else c)
        region_end = walk_root.extent.end.line if walk_root.extent else line
        scope.end_line = max(region_end, line)
        K = ci.CursorKind
        for d in walk_root.walk_preorder():
            if d.kind != K.CALL_EXPR or not d.spelling:
                continue
            dl = d.location.line
            if dl < line or dl > scope.end_line:
                continue
            scope.calls.append(CallSite(dl, d.spelling))
            if d.spelling == "wait":
                args = list(d.get_arguments())
                if args:
                    arg_toks = self._tokens(args[0])
                    if arg_toks:
                        scope.waits.append((dl, arg_toks[0]))
        facts.lock_scopes.append(scope)

    def _workers(self, c, rel, facts: Facts, fn_stack, enclosing_name) -> None:
        if not fn_stack:
            return
        fn = fn_stack[-1]
        K = ci.CursorKind
        for lam in fn.walk_preorder():
            if lam.kind != K.LAMBDA_EXPR:
                continue
            lrel = self._rel(lam)
            if lrel is None or not self._once("lambda", lrel, lam.location.line):
                continue
            toks = self._tokens(lam)
            captures = self._capture_items(toks)
            if not captures:
                continue
            types: dict[str, str] = {}
            for cap in captures:
                if cap.startswith("&") and len(cap) > 1:
                    types[cap] = self._local_type(fn, cap[1:].strip())
            facts.worker_lambdas.append(WorkerLambda(
                lrel, lam.location.line, tuple(captures), types,
                enclosing_name()))

    @staticmethod
    def _capture_items(toks: list[str]) -> list[str]:
        if not toks or toks[0] != "[":
            return []
        depth, items, cur = 0, [], []
        for t in toks:
            if t == "[":
                depth += 1
                if depth == 1:
                    continue
            if t == "]":
                depth -= 1
                if depth == 0:
                    break
            if depth == 0:
                continue
            if t == "," and depth == 1:
                items.append(" ".join(cur))
                cur = []
            else:
                cur.append(t)
        if cur:
            items.append(" ".join(cur))
        return [i for i in (x.strip().replace("& ", "&") for x in items) if i]

    @staticmethod
    def _local_type(fn, name: str) -> str:
        K = ci.CursorKind
        for d in fn.walk_preorder():
            if d.kind in (K.VAR_DECL, K.PARM_DECL) and d.spelling == name:
                return d.type.spelling
        return ""

    def _delta_access(self, c, rel, line, facts: Facts, fn_stack,
                      enclosing_name) -> None:
        ref = c.referenced
        owner = ""
        if ref is not None and ref.semantic_parent is not None:
            owner = ref.semantic_parent.spelling
        if owner == "DeltaSnapshot":
            kind = "snapshot"
        elif owner == "DeltaRelation":
            kind = "relation"
        else:
            return  # unrelated method that happens to share a name
        if not self._once("delta", rel, line, c.spelling):
            return
        toks = self._tokens(c)
        recv = "".join(toks[:8])
        recv = re.split(r"\.|->", recv)[0] or recv
        pin = False
        if fn_stack:
            K = ci.CursorKind
            for d in fn_stack[-1].walk_preorder():
                if d.kind == K.VAR_DECL and "ReadPin" in d.type.spelling \
                        and d.location.line <= line:
                    pin = True
                    break
            # A class holding a ReadPin member (the DeltaSnapshot pattern)
            # pins every member-function read for the object's lifetime.
            cls = fn_stack[-1].semantic_parent
            if not pin and cls is not None and cls.kind in (
                    K.CLASS_DECL, K.STRUCT_DECL):
                for fld in cls.get_children():
                    if fld.kind == K.FIELD_DECL and "ReadPin" in fld.type.spelling:
                        pin = True
                        break
        facts.delta_accesses.append(DeltaAccess(
            rel, line, recv, kind, pin, enclosing_name()))

    def _switch(self, c, rel, line, facts: Facts) -> None:
        K = ci.CursorKind
        children = list(c.get_children())
        if len(children) < 2:
            return
        cond, body = children[0], children[-1]
        enum_decl = cond.type.get_declaration()
        if enum_decl is None or enum_decl.kind != K.ENUM_DECL:
            return
        enum_name = enum_decl.spelling
        labels: list[str] = []
        has_default, default_line, loud = False, 0, False
        for st in body.walk_preorder():
            if st.kind == K.CASE_STMT:
                head = next(iter(st.get_children()), None)
                if head is not None:
                    for d in head.walk_preorder():
                        if d.kind == K.DECL_REF_EXPR and d.spelling.startswith("k"):
                            labels.append(d.spelling)
                            break
            elif st.kind == K.DEFAULT_STMT:
                has_default = True
                default_line = st.location.line
                toks = " ".join(self._tokens(st))
                loud = bool(re.search(
                    r"\bthrow\b|\bfail\s*\(|\babort\b|unreachable", toks))
        if not labels or not self._once("switch", rel, line):
            return
        facts.switches.append(SwitchStmt(
            rel, line, enum_name, tuple(labels), has_default, loud,
            default_line))
