#!/usr/bin/env python3
"""Compare bench stats documents against the checked-in baselines.

Each bench run (scripts/run_all.sh) drops BENCH_<name>.json at the repo
root: {"counters": {...}, "histograms": {hist: {count, sum, ..., p50,
p95, p99}}}. The committed reference documents live in bench/baselines/
under the same <name>.json. This script flags every histogram whose
median regressed by more than the threshold (default 25%) relative to its
baseline.

Medians below --min-us (default 100 microseconds) are skipped: at that
scale scheduler noise dwarfs real regressions. Counters are compared
exactly informationally (work counts should be deterministic) but never
fail the check — they drift legitimately when workloads are retuned.

Usage:
  scripts/check_bench.py [--baseline-dir bench/baselines] [--current-dir .]
                         [--threshold 0.25] [--min-us 100] [--strict]

Exit status: 0 when no median regressed (or without --strict), 1 when a
regression was found and --strict is set, 2 on usage errors.
"""

import argparse
import json
import os
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        return json.load(f)


def compare_one(name, baseline, current, threshold, min_us):
    """Returns a list of (histogram, baseline_p50, current_p50, ratio)."""
    regressions = []
    base_hists = baseline.get("histograms", {})
    cur_hists = current.get("histograms", {})
    # A baseline may pin per-histogram thresholds in a top-level
    # "_thresholds" map — e.g. the observability-off guard histogram runs
    # tighter than the global default so instrumentation creep in the
    # disabled path fails CI even when it stays under 25%.
    overrides = baseline.get("_thresholds", {})
    for hist, base in sorted(base_hists.items()):
        cur = cur_hists.get(hist)
        if cur is None:
            print(f"  {name}/{hist}: missing from current run")
            continue
        base_p50 = float(base.get("p50", 0.0))
        cur_p50 = float(cur.get("p50", 0.0))
        if base_p50 < min_us:
            continue  # too small to measure reliably
        hist_threshold = float(overrides.get(hist, threshold))
        ratio = cur_p50 / base_p50 if base_p50 > 0 else float("inf")
        marker = ""
        if ratio > 1.0 + hist_threshold:
            marker = "  << REGRESSION"
            regressions.append((hist, base_p50, cur_p50, ratio))
        print(
            f"  {name}/{hist}: p50 {base_p50:.1f} -> {cur_p50:.1f} us "
            f"({ratio:.0%} of baseline, threshold {hist_threshold:.0%}){marker}"
        )
    return regressions


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", default="bench/baselines")
    parser.add_argument("--current-dir", default=".")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="fractional slowdown that counts as a regression")
    parser.add_argument("--min-us", type=float, default=100.0,
                        help="ignore medians below this many microseconds")
    parser.add_argument("--strict", action="store_true",
                        help="exit 1 when any median regressed")
    args = parser.parse_args()

    if not os.path.isdir(args.baseline_dir):
        print(f"check_bench: no baseline dir {args.baseline_dir}; nothing to check")
        return 0

    baselines = sorted(
        f for f in os.listdir(args.baseline_dir) if f.endswith(".json")
    )
    if not baselines:
        print(f"check_bench: no baselines in {args.baseline_dir}; nothing to check")
        return 0

    all_regressions = []
    checked = 0
    for fname in baselines:
        name = fname[: -len(".json")]
        current_path = os.path.join(args.current_dir, f"BENCH_{name}.json")
        if not os.path.exists(current_path):
            print(f"{name}: no current run ({current_path} missing); skipped")
            continue
        print(f"{name}:")
        try:
            baseline = load(os.path.join(args.baseline_dir, fname))
            current = load(current_path)
        except (OSError, json.JSONDecodeError) as e:
            print(f"  unreadable stats document: {e}", file=sys.stderr)
            return 2
        checked += 1
        for hist, base_p50, cur_p50, ratio in compare_one(
            name, baseline, current, args.threshold, args.min_us
        ):
            all_regressions.append((name, hist, base_p50, cur_p50, ratio))

    print()
    if not all_regressions:
        print(f"check_bench: OK — no median regressed >"
              f"{args.threshold:.0%} across {checked} bench(es)")
        return 0

    print(f"check_bench: {len(all_regressions)} regression(s) "
          f">{args.threshold:.0%}:")
    for name, hist, base_p50, cur_p50, ratio in all_regressions:
        print(f"  {name}/{hist}: p50 {base_p50:.1f} -> {cur_p50:.1f} us "
              f"({ratio:.2f}x)")
    return 1 if args.strict else 0


if __name__ == "__main__":
    sys.exit(main())
