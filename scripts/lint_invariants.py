#!/usr/bin/env python3
"""Repository invariant linter — the rules the compiler cannot enforce.

Rules (scoped to src/ and examples/ unless noted):

  raw-mutex       No raw std::mutex / std::lock_guard / std::unique_lock /
                  std::scoped_lock outside src/common/sync.hpp. Lock state
                  must use the annotated cq::common::Mutex / LockGuard so
                  Clang's thread-safety analysis sees every acquisition.
                  (tests/ may use raw primitives to *construct* race
                  scenarios; the library may not.)

  raw-thread      No raw std::thread / std::jthread outside src/common/
                  (the sanctioned homes: thread_pool for evaluation lanes,
                  introspect_server for its acceptor). Engine concurrency
                  goes through cq::common::ThreadPool, whose lanes the
                  dispatcher sizes and joins deterministically; ad-hoc
                  threads dodge the determinism contract and the pool's
                  queue-depth gauge. (tests/ may spawn threads to construct
                  race scenarios; the library may not.)

  string-counter  No string-keyed Metrics::add("...") calls in library or
                  example code. Hot-path counters must use the interned
                  metric::Id table (common/metrics.hpp) so producers and
                  consumers agree on spelling and the add is O(1).

  pragma-once     Every header (src/, tests/, examples/, bench/) starts its
                  include-guard life with #pragma once.

  iostream        Library code (src/) and fuzz harnesses (fuzz/) neither
                  include <iostream> nor write to std::cout/cerr/clog —
                  library code logs through cq::log (common/logging.hpp,
                  whose implementation file is the single sanctioned
                  exception); fuzz harnesses print via <cstdio> so libFuzzer
                  output interleaves sanely. Examples and tests are
                  programs and may print.

  fuzz-corpus     Every fuzz target fuzz/fuzz_<name>.cpp ships a non-empty
                  seed corpus fuzz/corpus/<name>/ and is registered in
                  fuzz/CMakeLists.txt (CQ_FUZZ_TARGETS drives both the
                  libFuzzer binaries and the fuzz_replay_<name> ctest
                  cases — an unregistered target never replays in CI).

  swallowed-exception
                  No `catch (...)` in library code (src/) that neither
                  rethrows, captures via std::current_exception, logs
                  through cq::log, nor carries a comment saying *why* the
                  swallow is safe. A silent catch-all turns every future
                  bug into a no-symptom bug; the sanctioned swallows
                  (tracing must never take the engine down) all say so.

  unnamed-mutex   Every cq::common::Mutex declared in library or example
                  code carries a site name (and, for engine-lifetime locks,
                  a LockRank): `Mutex mu_{"site", LockRank::kX};`. An
                  unnamed mutex is invisible to lock-contention profiling
                  (/profile), the lock-order checker and the /lockgraph
                  export — docs/lock-hierarchy.md is the rank manifest,
                  scripts/check_lock_order.py the deeper cross-check.
                  (tests/ may declare anonymous scaffolding mutexes.)

Usage:
  scripts/lint_invariants.py             lint the tree; exit 0 clean, 1 dirty
  scripts/lint_invariants.py --self-test seed violations, assert detection
"""

from __future__ import annotations

import re
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

RAW_MUTEX_RE = re.compile(
    r"std::(mutex|recursive_mutex|shared_mutex|timed_mutex|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock)\b"
)
RAW_THREAD_RE = re.compile(r"std::(thread|jthread)\b")
# A Mutex declaration with no initializer (`;`) or an empty one (`{}`):
# references, parameters and the class definition itself don't match.
UNNAMED_MUTEX_RE = re.compile(
    r"\b(?:cq::)?(?:common::)?Mutex\s+\w+\s*(?:;|\{\s*\})"
)
STRING_COUNTER_RE = re.compile(r"\.add\(\s*\"")
IOSTREAM_RE = re.compile(r"#include\s*<iostream>|std::(cout|cerr|clog)\b")
COMMENT_RE = re.compile(r"^\s*(//|\*|/\*)")

RAW_MUTEX_ALLOWED = {"src/common/sync.hpp"}
RAW_THREAD_ALLOWED_PREFIX = "src/common/"
IOSTREAM_ALLOWED = {"src/common/logging.cpp"}

CATCH_ALL_RE = re.compile(r"\bcatch\s*\(\s*\.\.\.\s*\)")
#: Anything that makes a catch-all honest: rethrow, capture, log, or an
#: explanatory comment inside the handler block.
CATCH_OK_RE = re.compile(
    r"\bthrow\b|\bcurrent_exception\b|\blog\s*[:(]|\bCQ_LOG\b|//|/\*"
)


def find_swallowed_catches(text: str) -> list[int]:
    """1-based line numbers of `catch (...)` handlers in `text` that
    neither rethrow, capture, log, nor explain themselves."""
    hits: list[int] = []
    for m in CATCH_ALL_RE.finditer(text):
        open_idx = text.find("{", m.end())
        if open_idx < 0:
            continue
        depth, i = 1, open_idx + 1
        while i < len(text) and depth:
            if text[i] == "{":
                depth += 1
            elif text[i] == "}":
                depth -= 1
            i += 1
        body = text[open_idx + 1 : i - 1]
        if not CATCH_OK_RE.search(body):
            hits.append(text.count("\n", 0, m.start()) + 1)
    return hits


def strip_line_comment(line: str) -> str:
    """Cut a trailing // comment (good enough: no multiline strings here)."""
    idx = line.find("//")
    return line if idx < 0 else line[:idx]


def lint_tree(repo: Path) -> list[str]:
    errors: list[str] = []

    def rel(p: Path) -> str:
        return p.relative_to(repo).as_posix()

    def iter_files(*roots: str, suffixes: tuple[str, ...]) -> list[Path]:
        out: list[Path] = []
        for root in roots:
            base = repo / root
            if base.is_dir():
                out.extend(
                    p for p in sorted(base.rglob("*")) if p.suffix in suffixes
                )
        return out

    # raw-mutex + string-counter: src/, examples/ and fuzz/.
    for path in iter_files("src", "examples", "fuzz", suffixes=(".hpp", ".cpp", ".h")):
        rp = rel(path)
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if COMMENT_RE.match(line):
                continue
            code = strip_line_comment(line)
            if rp not in RAW_MUTEX_ALLOWED and (m := RAW_MUTEX_RE.search(code)):
                errors.append(
                    f"{rp}:{lineno}: raw-mutex: std::{m.group(1)} outside "
                    "src/common/sync.hpp — use cq::common::Mutex/LockGuard"
                )
            if not rp.startswith(RAW_THREAD_ALLOWED_PREFIX) and (
                m := RAW_THREAD_RE.search(code)
            ):
                errors.append(
                    f"{rp}:{lineno}: raw-thread: std::{m.group(1)} outside "
                    "src/common — use cq::common::ThreadPool"
                )
            if STRING_COUNTER_RE.search(code):
                errors.append(
                    f"{rp}:{lineno}: string-counter: string-keyed .add(\"...\") — "
                    "intern the counter in metric::Id (common/metrics.hpp)"
                )
            if rp not in RAW_MUTEX_ALLOWED and UNNAMED_MUTEX_RE.search(code):
                errors.append(
                    f"{rp}:{lineno}: unnamed-mutex: Mutex without a site name — "
                    "declare it `Mutex mu_{\"site\", LockRank::k...};` so "
                    "lockprof, the lock-order checker and /lockgraph see it"
                )

    # pragma-once: every header anywhere we compile from.
    for path in iter_files("src", "tests", "examples", "bench", "fuzz",
                           suffixes=(".hpp", ".h")):
        text = path.read_text()
        if "#pragma once" not in text:
            errors.append(f"{rel(path)}:1: pragma-once: header lacks #pragma once")

    # iostream: library code and fuzz harnesses (cstdio only there).
    for path in iter_files("src", "fuzz", suffixes=(".hpp", ".cpp", ".h")):
        rp = rel(path)
        if rp in IOSTREAM_ALLOWED:
            continue
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if COMMENT_RE.match(line):
                continue
            if IOSTREAM_RE.search(strip_line_comment(line)):
                errors.append(
                    f"{rp}:{lineno}: iostream: library code writes to iostreams — "
                    "log through cq::log (common/logging.hpp)"
                )

    # swallowed-exception: catch-alls in library code must rethrow, capture,
    # log, or explain themselves.
    for path in iter_files("src", suffixes=(".hpp", ".cpp", ".h")):
        rp = rel(path)
        for lineno in find_swallowed_catches(path.read_text()):
            errors.append(
                f"{rp}:{lineno}: swallowed-exception: `catch (...)` neither "
                "rethrows, captures via std::current_exception, logs via "
                "cq::log, nor carries a comment saying why the swallow is safe"
            )

    # fuzz-corpus: each fuzz target needs seeds and a replay registration.
    fuzz_dir = repo / "fuzz"
    if fuzz_dir.is_dir():
        cmake_file = fuzz_dir / "CMakeLists.txt"
        cmake_text = cmake_file.read_text() if cmake_file.is_file() else ""
        for path in sorted(fuzz_dir.glob("fuzz_*.cpp")):
            name = path.stem[len("fuzz_"):]
            corpus = fuzz_dir / "corpus" / name
            if not corpus.is_dir() or not any(
                p for p in corpus.iterdir() if not p.name.startswith(".")
            ):
                errors.append(
                    f"{rel(path)}:1: fuzz-corpus: target '{name}' has no non-empty "
                    f"seed corpus fuzz/corpus/{name}/"
                )
            if not re.search(rf"\b{re.escape(name)}\b", cmake_text):
                errors.append(
                    f"{rel(path)}:1: fuzz-corpus: target '{name}' not registered in "
                    "fuzz/CMakeLists.txt (add it to CQ_FUZZ_TARGETS so the "
                    "fuzz_replay ctest case exists)"
                )

    return errors


def self_test() -> int:
    """Seed one violation per rule into a scratch tree; every rule must fire."""
    cases = {
        "raw-mutex": ("src/bad_mutex.cpp", "static std::mutex mu;\n"),
        "raw-thread": ("src/bad_thread.cpp", "void f() { std::thread t; t.join(); }\n"),
        "string-counter": ("src/bad_counter.cpp", 'void f(M& m) { m.add("ad_hoc", 1); }\n'),
        "pragma-once": ("src/bad_header.hpp", "struct NoGuard {};\n"),
        "iostream": ("src/bad_print.cpp", "#include <iostream>\n"),
        "fuzz-corpus": ("fuzz/fuzz_orphan.cpp", "int orphan_target();\n"),
        "unnamed-mutex": ("src/bad_anon_mutex.cpp", "struct S { common::Mutex mu_; };\n"),
        "swallowed-exception": (
            "src/bad_catch.cpp",
            "void f() { try { g(); } catch (...) { count += 1; } }\n",
        ),
    }
    failures = 0
    for rule, (relpath, content) in cases.items():
        with tempfile.TemporaryDirectory() as tmp:
            scratch = Path(tmp)
            target = scratch / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            if rule != "pragma-once" and target.suffix == ".hpp":
                content = "#pragma once\n" + content
            target.write_text(content)
            hits = [e for e in lint_tree(scratch) if f" {rule}:" in e]
            if hits:
                print(f"self-test: {rule}: detected ({hits[0]})")
            else:
                print(f"self-test: {rule}: NOT DETECTED", file=sys.stderr)
                failures += 1
    # A clean scratch tree must produce no findings.
    with tempfile.TemporaryDirectory() as tmp:
        clean = Path(tmp)
        (clean / "src").mkdir()
        (clean / "src" / "ok.hpp").write_text("#pragma once\nstruct Ok {};\n")
        leftovers = lint_tree(clean)
        if leftovers:
            print(f"self-test: clean tree flagged: {leftovers}", file=sys.stderr)
            failures += 1
        else:
            print("self-test: clean tree: no findings")
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    if "--self-test" in argv:
        return self_test()
    errors = lint_tree(REPO)
    for e in errors:
        print(e, file=sys.stderr)
    if errors:
        print(f"lint_invariants: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    print("lint_invariants: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
