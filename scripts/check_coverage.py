#!/usr/bin/env python3
"""Line-coverage report + gate for the CQ engine's core directories.

Two acquisition modes, because the repo builds under two toolchains:

  gcov   GCC builds configured with -DCQ_COVERAGE=ON (the `coverage`
         preset): walks the build tree for .gcda arc files and asks
         `gcov --json-format --stdout` for per-line counts.

  llvm   clang builds (the `fuzz` preset in CI) compiled with
         -fprofile-instr-generate -fcoverage-mapping: merges .profraw
         files with llvm-profdata and reads `llvm-cov export` JSON for
         the given binaries.

The gate compares line coverage of the directory groups in
scripts/coverage_baseline.json ("floors") and fails when any group drops
below its floor. `--record` re-measures and rewrites the baseline with a
safety margin so toolchain variance between the two modes does not flap
the gate.

Usage:
  scripts/check_coverage.py --build-dir build-cov                # gcov gate
  scripts/check_coverage.py --build-dir build-fuzz --mode llvm \
      --binary build-fuzz/fuzz/fuzz_sql_parser ...              # llvm gate
  scripts/check_coverage.py --build-dir build-cov --record      # new baseline
"""

from __future__ import annotations

import argparse
import json
import shutil
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
BASELINE = REPO / "scripts" / "coverage_baseline.json"

# Directory groups the gate protects (repo-relative prefixes).
#: Directory prefixes — or single files — whose line coverage is floored.
#: src/delta guards the pin/GC contract; lock_order.cpp the deadlock
#: checker the whole lock discipline leans on.
GROUPS = ("src/query", "src/cq", "src/delta", "src/common/lock_order.cpp")

# Floor = recorded coverage minus this margin (percentage points): absorbs
# gcov-vs-llvm-cov accounting differences and minor refactors.
MARGIN = 5.0


def run(cmd: list[str], **kw) -> subprocess.CompletedProcess:
    return subprocess.run(cmd, capture_output=True, text=True, check=False, **kw)


def norm_source(path_str: str, build_dir: Path) -> Path | None:
    """Resolve a compiler-reported source path; None when outside the repo."""
    p = Path(path_str)
    if not p.is_absolute():
        p = (build_dir / p).resolve()
    try:
        p = p.resolve()
        p.relative_to(REPO)
    except (OSError, ValueError):
        return None
    return p


def collect_gcov(build_dir: Path) -> dict[Path, dict[int, int]]:
    """Per-source line counts from every .gcda under the build tree."""
    gcov = shutil.which("gcov")
    if gcov is None:
        sys.exit("error: gcov not found (gcov mode needs the GCC toolchain)")
    lines: dict[Path, dict[int, int]] = {}
    gcda = sorted(build_dir.rglob("*.gcda"))
    if not gcda:
        sys.exit(f"error: no .gcda files under {build_dir} — configure with "
                 "-DCQ_COVERAGE=ON (the 'coverage' preset) and run the tests first")
    for arc in gcda:
        proc = run([gcov, "--json-format", "--stdout", str(arc)], cwd=arc.parent)
        if proc.returncode != 0:
            continue
        for chunk in proc.stdout.splitlines():
            chunk = chunk.strip()
            if not chunk.startswith("{"):
                continue
            try:
                doc = json.loads(chunk)
            except json.JSONDecodeError:
                continue
            for f in doc.get("files", []):
                src = norm_source(f.get("file", ""), build_dir)
                if src is None:
                    continue
                per_line = lines.setdefault(src, {})
                for ln in f.get("lines", []):
                    n = ln.get("line_number")
                    c = ln.get("count", 0)
                    if n is not None:
                        per_line[n] = max(per_line.get(n, 0), int(c))
    return lines


def collect_llvm(build_dir: Path, binaries: list[str]) -> dict[Path, dict[int, int]]:
    """Per-source line counts from llvm-cov export over .profraw profiles."""
    profdata_tool = shutil.which("llvm-profdata")
    cov_tool = shutil.which("llvm-cov")
    if profdata_tool is None or cov_tool is None:
        sys.exit("error: llvm-profdata/llvm-cov not found (llvm mode)")
    raw = sorted(build_dir.rglob("*.profraw"))
    if not raw:
        sys.exit(f"error: no .profraw files under {build_dir} — run the "
                 "instrumented binaries with LLVM_PROFILE_FILE set first")
    if not binaries:
        sys.exit("error: llvm mode needs at least one --binary")
    merged = build_dir / "coverage.profdata"
    proc = run([profdata_tool, "merge", "-sparse", "-o", str(merged)]
               + [str(p) for p in raw])
    if proc.returncode != 0:
        sys.exit(f"error: llvm-profdata merge failed:\n{proc.stderr}")
    cmd = [cov_tool, "export", "-instr-profile", str(merged), binaries[0]]
    for extra in binaries[1:]:
        cmd += ["-object", extra]
    proc = run(cmd)
    if proc.returncode != 0:
        sys.exit(f"error: llvm-cov export failed:\n{proc.stderr}")
    doc = json.loads(proc.stdout)
    lines: dict[Path, dict[int, int]] = {}
    for datum in doc.get("data", []):
        for f in datum.get("files", []):
            src = norm_source(f.get("filename", ""), build_dir)
            if src is None:
                continue
            per_line = lines.setdefault(src, {})
            # Segments: [line, col, count, has_count, is_region_entry, ...]
            for seg in f.get("segments", []):
                line, _col, count, has_count = seg[0], seg[1], seg[2], seg[3]
                if has_count:
                    per_line[line] = max(per_line.get(line, 0), int(count))
    return lines


def summarize(lines: dict[Path, dict[int, int]]) -> dict[str, tuple[int, int]]:
    """(covered, total) instrumented lines per directory group."""
    totals = {g: [0, 0] for g in GROUPS}
    for src, per_line in lines.items():
        rel = src.relative_to(REPO).as_posix()
        group = next(
            (g for g in GROUPS if rel == g or rel.startswith(g + "/")), None)
        if group is None:
            continue
        totals[group][1] += len(per_line)
        totals[group][0] += sum(1 for c in per_line.values() if c > 0)
    return {g: (c, t) for g, (c, t) in totals.items()}


def pct(covered: int, total: int) -> float:
    return 100.0 * covered / total if total else 0.0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default="build-cov", type=Path)
    ap.add_argument("--mode", choices=("auto", "gcov", "llvm"), default="auto")
    ap.add_argument("--binary", action="append", default=[],
                    help="instrumented binary for llvm-cov export (repeatable)")
    ap.add_argument("--baseline", default=BASELINE, type=Path)
    ap.add_argument("--record", action="store_true",
                    help="rewrite the baseline from this measurement")
    args = ap.parse_args()

    build_dir = args.build_dir if args.build_dir.is_absolute() else REPO / args.build_dir
    mode = args.mode
    if mode == "auto":
        mode = "llvm" if any(build_dir.rglob("*.profraw")) else "gcov"

    lines = (collect_llvm(build_dir, args.binary) if mode == "llvm"
             else collect_gcov(build_dir))
    summary = summarize(lines)

    print(f"line coverage ({mode} mode, {build_dir.name}):")
    for group, (covered, total) in summary.items():
        print(f"  {group:10s} {pct(covered, total):6.2f}%  ({covered}/{total} lines)")

    if args.record:
        baseline = {
            "comment": "line-coverage floors for scripts/check_coverage.py; "
                       f"recorded minus a {MARGIN}-point margin. Re-record with "
                       "--record after intentional coverage changes.",
            "mode": mode,
            "recorded": {g: round(pct(c, t), 2) for g, (c, t) in summary.items()},
            "floors": {g: max(0.0, round(pct(c, t) - MARGIN, 1))
                       for g, (c, t) in summary.items()},
        }
        args.baseline.write_text(json.dumps(baseline, indent=2) + "\n")
        print(f"baseline recorded to {args.baseline}")
        return 0

    if not args.baseline.exists():
        sys.exit(f"error: {args.baseline} missing — run with --record first")
    floors = json.loads(args.baseline.read_text())["floors"]
    failed = False
    for group, floor in floors.items():
        covered, total = summary.get(group, (0, 0))
        actual = pct(covered, total)
        verdict = "ok" if actual >= floor else "BELOW FLOOR"
        print(f"  gate {group:10s} floor {floor:5.1f}%  actual {actual:6.2f}%  {verdict}")
        if actual < floor:
            failed = True
    if failed:
        print("coverage gate FAILED — add tests/corpus seeds or (if the drop is "
              "intentional) re-record the baseline with --record", file=sys.stderr)
        return 1
    print("coverage gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
