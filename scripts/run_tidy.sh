#!/usr/bin/env bash
# Run the clang-tidy baseline (.clang-tidy) over the library, test, bench
# and example sources against the exported compilation database.
#
#   scripts/run_tidy.sh [--require] [build-dir]
#
# Exits 0 on a warning-clean tree, nonzero on any finding (WarningsAsErrors
# is '*' in .clang-tidy). Without clang-tidy installed the script SKIPS
# with exit 0 so developer machines without LLVM stay usable; pass
# --require (CI does) to turn the missing tool into a failure.
set -euo pipefail

cd "$(dirname "$0")/.."

require=0
build_dir=build
for arg in "$@"; do
  case "$arg" in
    --require) require=1 ;;
    *) build_dir="$arg" ;;
  esac
done

tidy=""
for cand in clang-tidy clang-tidy-20 clang-tidy-19 clang-tidy-18 clang-tidy-17 \
            clang-tidy-16 clang-tidy-15 clang-tidy-14; do
  if command -v "$cand" >/dev/null 2>&1; then
    tidy="$cand"
    break
  fi
done
if [[ -z "$tidy" ]]; then
  if [[ "$require" == 1 ]]; then
    echo "run_tidy: clang-tidy not found and --require given" >&2
    exit 1
  fi
  echo "run_tidy: clang-tidy not installed; skipping (pass --require to fail instead)"
  exit 0
fi

if [[ ! -f "$build_dir/compile_commands.json" ]]; then
  echo "run_tidy: $build_dir/compile_commands.json missing; configuring..."
  cmake -B "$build_dir" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
fi

# Everything with an entry in the compilation database except third-party
# and generated code.
mapfile -t sources < <(find src tests bench examples -name '*.cpp' | sort)

echo "run_tidy: $tidy over ${#sources[@]} files (db: $build_dir)"

runner=""
for cand in run-clang-tidy "run-clang-tidy-${tidy##*-}"; do
  if command -v "$cand" >/dev/null 2>&1; then
    runner="$cand"
    break
  fi
done

if [[ -n "$runner" ]]; then
  # run-clang-tidy parallelizes and already exits nonzero on findings.
  "$runner" -clang-tidy-binary "$tidy" -p "$build_dir" -quiet \
    '^(?!.*(/_deps/|/build)).*/(src|tests|bench|examples)/.*\.cpp$'
else
  status=0
  for f in "${sources[@]}"; do
    "$tidy" -p "$build_dir" --quiet "$f" || status=1
  done
  exit "$status"
fi
