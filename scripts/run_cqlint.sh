#!/usr/bin/env bash
# Run cqlint, the whole-project semantic analyzer (scripts/cqlint/).
#
# Backend selection mirrors check_thread_safety.sh: the libclang backend
# is used when the pinned python bindings + shared library are present;
# otherwise the dependency-free textual backend runs (same rules, same
# fixtures). CI passes --require-clang so the semantic backend cannot
# silently degrade there; local runs degrade gracefully.
#
# Usage:
#   scripts/run_cqlint.sh [--require-clang] [--self-test] [extra cqlint args...]
set -euo pipefail

cd "$(dirname "$0")/.."

REQUIRE_CLANG=0
ARGS=()
for a in "$@"; do
  case "$a" in
    --require-clang) REQUIRE_CLANG=1 ;;
    *) ARGS+=("$a") ;;
  esac
done

PY=python3
if ! command -v "$PY" >/dev/null 2>&1; then
  echo "run_cqlint: python3 not found; skipping (install python3 to enable)" >&2
  exit 0
fi

# Pin libclang discovery for the semantic backend: prefer an explicit
# CQLINT_LIBCLANG, else probe the llvm major versions the tool supports.
if [[ -z "${CQLINT_LIBCLANG:-}" ]]; then
  for v in 18 17 16 15 14; do
    for cand in "/usr/lib/llvm-$v/lib/libclang-$v.so.1" \
                "/usr/lib/llvm-$v/lib/libclang.so.1" \
                "/usr/lib/x86_64-linux-gnu/libclang-$v.so.1"; do
      if [[ -e "$cand" ]]; then
        export CQLINT_LIBCLANG="$cand"
        break 2
      fi
    done
  done
fi

# The semantic backend wants compile_commands.json; point it at whichever
# configured build tree has one (dev preset first, then the default tree).
COMPDB=""
for d in build-dev build build-coverage; do
  if [[ -f "$d/compile_commands.json" ]]; then
    COMPDB="$d"
    break
  fi
done

CMD=("$PY" scripts/cqlint/cqlint.py)
[[ -n "$COMPDB" ]] && CMD+=(--compdb "$COMPDB")
if [[ "$REQUIRE_CLANG" == 1 ]]; then
  CMD+=(--require-clang)
fi
CMD+=("${ARGS[@]+"${ARGS[@]}"}")

echo "run_cqlint: ${CMD[*]}" >&2
exec "${CMD[@]}"
